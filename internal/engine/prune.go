package engine

import "math/bits"

// Semi-join pre-pruning: before the join-count DP runs, each constraint
// table is reduced against the value supports of every other constraint
// sharing one of its variables (the bags adjacent in the decomposition
// all draw from these same tables).  A row whose value at some variable
// appears in no other covering constraint can contribute to no complete
// assignment, so dropping it leaves every count unchanged while
// shrinking the intermediate tables the DP joins and groups — and the
// prefix indexes the bound plan builds over them.
//
// The pass works entirely in word bitmaps: each table carries an alive
// mask (bit r = row r survives), supports and per-variable allowed sets
// are value bitmaps intersected 64 values per word op.  Rows are never
// copied between rounds — the session-shared input tables are never
// mutated, and the surviving rows are compacted into fresh (arena-
// backed, exactly sized) tables once, at the fixpoint.
//
// The default strategy is worklist-driven arc consistency (AC-4): one
// pass per column counts the live occurrences of every value and
// builds a posting list (value → row ids, a counting-sort CSR), one
// filtering pass kills the rows holding initially-disallowed values,
// and from then on work is proportional to deaths alone.  A dying row
// decrements its cells' occurrence counts; a count hitting zero clears
// the value's support bit, and a value dropping out of a variable's
// allowed set walks exactly the posting lists of that (variable, value)
// pair to kill its remaining rows.  No table is ever rescanned, no
// round structure exists, and the fixpoint reached is exact — cascades
// deeper than pruneMaxRounds that the scanning fallback cannot see are
// followed to the end.  Counters and postings take O(Σ|scope|·|B|)
// memory; above pruneMaxCntCells cells the pass falls back to
// re-scanning live rows each round (word-skipping dead 64-row blocks,
// re-checking only columns whose allowed set shrank), capped at
// pruneMaxRounds rounds.

// pruneMinRows skips the pass when every table is tiny: the DP on such
// inputs is cheaper than even one filtering round.
const pruneMinRows = 32

// pruneMaxRounds caps the scanning fallback's fixpoint iteration; each
// extra round only helps when the previous round newly emptied some
// support.  (The AC-4 path has no cap: its total work is linear.)  A
// var so the differential test can run the fallback to convergence.
var pruneMaxRounds = 4

// pruneMaxCntCells caps the occurrence-counter and posting-list index
// (8 bytes per (scope position, value) cell) behind the AC-4 strategy:
// 4M cells = 32 MiB.  A var so the differential test can force the
// scanning fallback.
var pruneMaxCntCells = 1 << 22

// semiJoinPrune returns tables with unsupported rows removed, and
// whether some table became empty (in which case the component's join
// count is zero and the returned tables are meaningless).  The input
// slice and its tables are not modified.
func semiJoinPrune(pc *planComponent, tables []*Table, domSize int) ([]*Table, bool) {
	if len(pc.constraints) < 2 || domSize <= 0 {
		return tables, false
	}
	biggest := 0
	for _, t := range tables {
		if t.Len() > biggest {
			if biggest = t.Len(); biggest >= pruneMinRows {
				break
			}
		}
	}
	if biggest < pruneMinRows {
		return tables, false
	}

	// Per-table alive row masks, all-ones to start (bits past n stay 0
	// so whole-word scans never visit phantom rows).
	k := len(tables)
	alive := make([][]uint64, k)
	liveN := make([]int, k)
	totScope := 0
	for ci, t := range tables {
		rw := (t.n + 63) / 64
		m := make([]uint64, rw)
		for i := range m {
			m[i] = ^uint64(0)
		}
		if rw > 0 && t.n&63 != 0 {
			m[rw-1] = 1<<(uint(t.n)&63) - 1
		}
		alive[ci] = m
		liveN[ci] = t.n
		if t.n == 0 {
			return nil, true // empty constraint table: the join is zero
		}
		totScope += len(pc.constraints[ci].scope)
	}

	var pruned, empty bool
	if totScope*domSize <= pruneMaxCntCells {
		pruned, empty = pruneAC4(pc, tables, domSize, totScope, alive, liveN)
	} else {
		pruned, empty = pruneRounds(pc, tables, domSize, alive, liveN)
	}
	if empty {
		return nil, true
	}
	if !pruned {
		return tables, false
	}
	// Compact once at the fixpoint: each shrunken table gets an exactly
	// sized arena allocation and a single masked copy pass.
	out := append([]*Table(nil), tables...)
	for ci, t := range tables {
		if liveN[ci] == t.n {
			continue
		}
		nt := newTable(t.width, t.dom, t.ar)
		dst := t.ar.allocI32(liveN[ci] * t.width)
		o := 0
		for wi, mw := range alive[ci] {
			base := wi << 6
			for ; mw != 0; mw &= mw - 1 {
				r := base + bits.TrailingZeros64(mw)
				copy(dst[o:o+t.width], t.flat[r*t.width:(r+1)*t.width])
				o += t.width
			}
		}
		nt.flat = dst
		nt.n = liveN[ci]
		out[ci] = nt
	}
	return out, false
}

// pruneRem is one worklist entry of the AC-4 pass: value u left
// variable v's allowed set, so every live row holding u at a position
// bound to v must die.
type pruneRem struct{ v, u int32 }

// pruneAC4 runs the worklist arc-consistency strategy.  It mutates
// alive and liveN in place and reports (any row died, some table
// emptied).
func pruneAC4(pc *planComponent, tables []*Table, domSize, totScope int, alive [][]uint64, liveN []int) (bool, bool) {
	words := (domSize + 63) / 64
	nv := pc.nActive
	k := len(tables)

	// Slot layout: one slot per (constraint, scope position), constraint
	// ci's slots starting at slotOf[ci].
	slotOf := make([]int, k)
	slotTab := make([]int32, totScope)
	slotCol := make([]int32, totScope)
	varSlots := make([][]int32, nv)
	{
		slot := 0
		for ci := range tables {
			slotOf[ci] = slot
			for j, v := range pc.constraints[ci].scope {
				slotTab[slot] = int32(ci)
				slotCol[slot] = int32(j)
				varSlots[v] = append(varSlots[v], int32(slot))
				slot++
			}
		}
	}

	// Occurrence counts and support bitmaps per slot, from one column
	// pass each.
	cnt := make([]int32, totScope*domSize)
	sup := make([]uint64, totScope*words)
	for ci, t := range tables {
		for j := range pc.constraints[ci].scope {
			slot := slotOf[ci] + j
			sb := sup[slot*words : (slot+1)*words]
			cb := cnt[slot*domSize : (slot+1)*domSize]
			for off := j; off < len(t.flat); off += t.width {
				u := int(t.flat[off])
				cb[u]++
				sb[u>>6] |= 1 << (u & 63)
			}
		}
	}

	// Posting lists: postRows[postStart[slot*(domSize+1)+u] ...
	// postStart[slot*(domSize+1)+u+1]] are the live rows holding value u
	// at the slot's column, ascending (counting sort off cnt).  Built
	// lazily before the first worklist drain: components the initial
	// filtering pass already decides — emptied tables, or no removals at
	// all — never pay for the index, and a late build only indexes the
	// rows that survived that pass.
	var postStart, postRows []int32
	buildPostings := func() {
		cells := 0
		for ci, t := range tables {
			cells += liveN[ci] * t.width
		}
		postStart = make([]int32, totScope*(domSize+1))
		postRows = make([]int32, cells)
		base := int32(0)
		for slot := 0; slot < totScope; slot++ {
			ps := postStart[slot*(domSize+1) : (slot+1)*(domSize+1)]
			cb := cnt[slot*domSize : (slot+1)*domSize]
			ps[0] = base
			for u, c := range cb {
				ps[u+1] = ps[u] + c
			}
			base = ps[domSize]
			ci := int(slotTab[slot])
			t := tables[ci]
			j := int(slotCol[slot])
			live := int32(liveN[ci])
			// Fill with ps[u] as a moving cursor over the live rows;
			// afterwards each ps[u] holds the old ps[u+1], so one
			// overlapping shift restores the start offsets.
			for wi, mw := range alive[ci] {
				rb := int32(wi << 6)
				for ; mw != 0; mw &= mw - 1 {
					r := rb + int32(bits.TrailingZeros64(mw))
					u := int(t.flat[int(r)*t.width+j])
					postRows[ps[u]] = r
					ps[u]++
				}
			}
			copy(ps[1:], ps[:domSize])
			ps[0] = base - live
		}
	}

	// Allowed sets: the intersection of every covering slot's support.
	allowed := make([]uint64, nv*words)
	for i := range allowed {
		allowed[i] = ^uint64(0)
	}
	for v := 0; v < nv; v++ {
		ab := allowed[v*words : (v+1)*words]
		for _, slot := range varSlots[v] {
			sb := sup[int(slot)*words : (int(slot)+1)*words]
			for i := range ab {
				ab[i] &= sb[i]
			}
		}
	}

	queue := make([]pruneRem, 0, 64)
	pruned, emptied := false, false
	// kill clears row r of table ci and feeds the worklist: a cell count
	// hitting zero drops the value from that slot's support, and — when
	// the value was still allowed for the slot's variable — from the
	// variable's allowed set.
	kill := func(ci int, r int32) {
		m := alive[ci]
		wi, bit := int(r>>6), uint64(1)<<(uint(r)&63)
		if m[wi]&bit == 0 {
			return
		}
		m[wi] &^= bit
		liveN[ci]--
		if liveN[ci] == 0 {
			emptied = true
		}
		pruned = true
		t := tables[ci]
		w := t.width
		rowBase := int(r) * w
		slot := slotOf[ci]
		for jj := 0; jj < w; jj++ {
			uu := int(t.flat[rowBase+jj])
			ix := (slot + jj) * domSize
			if cnt[ix+uu]--; cnt[ix+uu] == 0 {
				sup[(slot+jj)*words+uu>>6] &^= 1 << (uu & 63)
				v := pc.constraints[ci].scope[jj]
				ab := allowed[v*words : (v+1)*words]
				if ab[uu>>6]&(1<<(uu&63)) != 0 {
					ab[uu>>6] &^= 1 << (uu & 63)
					queue = append(queue, pruneRem{v: int32(v), u: int32(uu)})
				}
			}
		}
	}

	// Initial filtering: kill every row holding a value outside its
	// variable's allowed set.  Deaths enqueue removals; the worklist is
	// drained afterwards (order does not matter for the fixpoint).
	for ci, t := range tables {
		m := alive[ci]
		w := t.width
		for j, v := range pc.constraints[ci].scope {
			ab := allowed[v*words : (v+1)*words]
			for wi := range m {
				mw := m[wi]
				if mw == 0 {
					continue
				}
				base := int32(wi << 6)
				for ; mw != 0; mw &= mw - 1 {
					r := base + int32(bits.TrailingZeros64(mw))
					u := int(t.flat[int(r)*w+j])
					if ab[u>>6]&(1<<(u&63)) == 0 {
						kill(ci, r)
					}
				}
			}
		}
		if emptied {
			return true, true
		}
	}

	// Drain: each removed (variable, value) pair walks exactly the
	// posting lists of the slots bound to the variable.
	if len(queue) > 0 {
		buildPostings()
	}
	for len(queue) > 0 {
		rem := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, slot := range varSlots[rem.v] {
			ci := int(slotTab[slot])
			ps := postStart[int(slot)*(domSize+1):]
			lo, hi := ps[rem.u], ps[rem.u+1]
			for _, r := range postRows[lo:hi] {
				kill(ci, r)
			}
			if emptied {
				return true, true
			}
		}
	}
	return pruned, false
}

// pruneRounds is the scanning fallback for components whose
// (scope × domain) product would make the AC-4 index too large: each
// round rebuilds the per-variable allowed sets from the live rows and
// kills the rows left unsupported, up to pruneMaxRounds rounds.
// Filtering is column-major and delta-driven — allowed sets only
// shrink, so a surviving row is only rechecked at columns whose
// variable shrank in the latest rebuild.
func pruneRounds(pc *planComponent, tables []*Table, domSize int, alive [][]uint64, liveN []int) (bool, bool) {
	words := (domSize + 63) / 64
	nv := pc.nActive
	allowed := make([]uint64, nv*words)
	prev := make([]uint64, nv*words)
	varBits := func(v int) []uint64 { return allowed[v*words : (v+1)*words] }
	varChanged := make([]bool, nv)
	support := make([]uint64, words)

	pruned := false
	for round := 0; round < pruneMaxRounds; round++ {
		for i := range allowed {
			allowed[i] = ^uint64(0)
		}
		for ci, t := range tables {
			m := alive[ci]
			for j, v := range pc.constraints[ci].scope {
				for i := range support {
					support[i] = 0
				}
				for wi, w := range m {
					if w == 0 {
						continue // 64 dead rows skipped in one test
					}
					base := wi << 6
					for w != 0 {
						r := base + bits.TrailingZeros64(w)
						w &= w - 1
						u := int(t.flat[r*t.width+j])
						support[u>>6] |= 1 << (u & 63)
					}
				}
				ab := varBits(v)
				for i := range ab {
					ab[i] &= support[i]
				}
			}
		}
		for v := 0; v < nv; v++ {
			if round == 0 {
				varChanged[v] = true
				continue
			}
			varChanged[v] = false
			ab, pb := allowed[v*words:(v+1)*words], prev[v*words:(v+1)*words]
			for i := range ab {
				if ab[i] != pb[i] {
					varChanged[v] = true
					break
				}
			}
		}
		copy(prev, allowed)
		changed := false
		for ci, t := range tables {
			m := alive[ci]
			w := t.width
			for j, v := range pc.constraints[ci].scope {
				if !varChanged[v] {
					continue
				}
				ab := varBits(v)
				for wi, mw := range m {
					if mw == 0 {
						continue
					}
					base := wi << 6
					for rem := mw; rem != 0; rem &= rem - 1 {
						r := base + bits.TrailingZeros64(rem)
						u := int(t.flat[r*w+j])
						if ab[u>>6]&(1<<(u&63)) != 0 {
							continue
						}
						m[wi] &^= rem & -rem
						liveN[ci]--
						changed = true
					}
				}
			}
			if liveN[ci] == 0 {
				return true, true
			}
		}
		if !changed {
			break
		}
		pruned = true
	}
	return pruned, false
}
