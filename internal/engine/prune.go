package engine

// Semi-join pre-pruning: before the join-count DP runs, each constraint
// table is reduced against the value supports of every other constraint
// sharing one of its variables (the bags adjacent in the decomposition
// all draw from these same tables).  A row whose value at some variable
// appears in no other covering constraint can contribute to no complete
// assignment, so dropping it leaves every count unchanged while
// shrinking the intermediate tables the DP joins and groups — and the
// prefix indexes the bound plan builds over them.
//
// The pass runs a few rounds of (compute per-variable supports →
// filter rows) to a fixpoint or a small cap; each round is linear in
// the total number of table cells.  Session-cached tables are shared
// across plans and never mutated: filtering builds a new columnar Table
// with the surviving rows compacted.

// pruneMinRows skips the pass when every table is tiny: the DP on such
// inputs is cheaper than even one filtering round.
const pruneMinRows = 32

// pruneMaxRounds caps the fixpoint iteration; each extra round only
// helps when a previous round's filtering newly emptied some support.
const pruneMaxRounds = 4

// semiJoinPrune returns tables with unsupported rows removed, and
// whether some table became empty (in which case the component's count
// is zero).  The input slice is not modified.
func semiJoinPrune(pc *planComponent, tables []*Table, domSize int) ([]*Table, bool) {
	if len(pc.constraints) < 2 || domSize <= 0 {
		return tables, false
	}
	biggest := 0
	for _, t := range tables {
		if t.Len() > biggest {
			if biggest = t.Len(); biggest >= pruneMinRows {
				break
			}
		}
	}
	if biggest < pruneMinRows {
		return tables, false
	}

	words := (domSize + 63) / 64
	nv := pc.nActive
	allowed := make([]uint64, nv*words)
	varBits := func(v int) []uint64 { return allowed[v*words : (v+1)*words] }
	support := make([]uint64, words)

	cur := append([]*Table(nil), tables...)
	for round := 0; round < pruneMaxRounds; round++ {
		// Per-variable allowed sets: the intersection, over every
		// constraint covering the variable, of the values its table
		// still holds there.
		for i := range allowed {
			allowed[i] = ^uint64(0)
		}
		for ci, t := range cur {
			for j, v := range pc.constraints[ci].scope {
				for i := range support {
					support[i] = 0
				}
				for off := j; off < len(t.flat); off += t.width {
					u := int(t.flat[off])
					support[u>>6] |= 1 << (u & 63)
				}
				ab := varBits(v)
				for i := range ab {
					ab[i] &= support[i]
				}
			}
		}
		// Filter each table to rows whose every value is still allowed.
		// Tables are never mutated (they may be the shared session
		// copies): on the first removed row the survivors so far are
		// copied into a fresh table, which then receives the rest.
		changed := false
		for ci, t := range cur {
			scope := pc.constraints[ci].scope
			w := t.width
			var nt *Table
		rowLoop:
			for r := 0; r < t.n; r++ {
				base := r * w
				for j, v := range scope {
					u := int(t.flat[base+j])
					if varBits(v)[u>>6]&(1<<(u&63)) == 0 {
						if nt == nil {
							nt = newTable(w, t.dom)
							nt.flat = append(make([]int32, 0, len(t.flat)), t.flat[:base]...)
							nt.n = r
						}
						continue rowLoop
					}
				}
				if nt != nil {
					nt.flat = append(nt.flat, t.flat[base:base+w]...)
					nt.n++
				}
			}
			if nt == nil {
				continue
			}
			cur[ci] = nt
			changed = true
			if nt.n == 0 {
				return cur, true
			}
		}
		if !changed {
			break
		}
	}
	return cur, false
}
