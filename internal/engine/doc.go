// Package engine is the layered execution core of the counting pipeline.
// It separates three concerns that the paper's algorithms (Theorems 2.11
// and 3.1) interleave:
//
//   - the Plan IR layer: compiling a pp-formula once into an executable
//     Plan — every engine (brute, projection, FPT with or without core,
//     auto) is a Plan behind the same interface, so callers never
//     switch-dispatch on engine names.  Plans are memoized per formula
//     identity (Compile) and per canonical counting-class fingerprint
//     (CompileKeyed): counting-equivalent terms — across inclusion–
//     exclusion expansions, Counters, and batches — share one plan;
//   - the Executor layer (exec.go, prune.go): a semi-join pre-pruning
//     pass that reduces each constraint table against the value supports
//     of the other constraints on its variables — implemented on
//     per-table alive-row bitmasks and per-variable allowed-value masks
//     (64 candidates per word, dead blocks skipped wordwise, one
//     exact-size compaction at fixpoint) — then the join-count dynamic
//     program itself.  The DP is index-driven and multi-core: at
//     plan-bind time (once per component and session) each node gets a
//     constraint bind order (smallest table first, then maximal
//     bound-prefix overlap) and each non-pivot step gets a prefix index
//     of its table keyed on the packed values of the already-bound part
//     of its scope, so enumeration is index probes instead of
//     backtracking scans.  Prefix indexes (tableIndex) are CSR-layout
//     open-addressing tables: splitmix64-hashed packed keys in a
//     power-of-two slot array sized once at build and never rehashed,
//     rows contiguous in one shared array, probes allocation-free; the
//     per-table index cache is LRU-capped (tableIndexCacheCap).  At run
//     time independent subtrees of the decomposition execute
//     concurrently on a bounded worker pool and large pivot tables are
//     sharded row-wise into per-worker accumulators (bit-identical to
//     serial execution, with a serial fallback below a size threshold).
//     Bag keys are packed uint64 (with a spill path for wide bags),
//     counts are int64 with overflow detection before big.Int held
//     inline in open-addressing wmap accumulators, and scratch buffers
//     are pooled.  The worker budget comes from the EPCQ_WORKERS
//     environment variable, SetDefaultWorkers, or per-call overrides
//     (CountInWorkers);
//   - the Session layer (session.go): per-structure state — fingerprint,
//     constraint tables materialized straight off the columnar relation
//     stores, bound execution plans, cached sentence checks, and a count
//     memo keyed on canonical term fingerprints (each unique counting
//     class executes at most once per structure-version) — shared
//     across φ⁻af terms, repeated counts, and batched counting, with
//     LRU eviction of the session registry under cap pressure
//     (SessionStats exposes the registry telemetry).  Session memory —
//     table rows, index slots, prune scratch — is bump-allocated from a
//     per-session arena (arena.go) drawing 256 KiB chunks from
//     process-wide pools; counts in flight hold a pin refcount, and
//     retirement (eviction, ReleaseSession, version replacement) frees
//     the chunks back to the pools once the last pin drops, with
//     ArenaChunksLive gauging the pool debt.  Memo-warm serving
//     (countMemoHit, Counter.CountBatchInto above) answers settled
//     fingerprints with zero heap allocations per request.
//
// A fourth concern, delta maintenance (delta.go), spans the last two
// layers: memoized counts of delta-maintainable FPT plans are
// version-stamped and *advanced* across append batches instead of
// recomputed.  When a structure's version bumps, SessionFor carries the
// stale session's settled counts into its replacement as priors; the
// next keyed count of the same fingerprint then applies the exact
// telescoped delta-join identity — one mixed join per constraint whose
// table grew, over zero-copy prefix/suffix views of the new session
// tables (old tables are row prefixes, by the stores' insertion-order
// materialization) — and re-stamps the memo, at a cost proportional to
// the appended rows.  Plans opt in at compile time (deltaOK: every
// component a quantifier-free join over atoms); oversized deltas,
// foreign or rewound snapshots, and disabled maintenance
// (SetDeltaEnabled, SetDeltaThresholds) fall back to a full recount
// that re-captures fresh state.  DeltaStats counts advances vs
// fallbacks; priors live inside sessions, so eviction frees them.
//
// Execution is cancellable: CountInCtx / CountKeyedCtx / RunBoundedCtx
// thread a context through every engine, and the join-count DP polls it
// at pivot-row and emission granularity (dpRun.cancelled), so a
// serving layer's per-request deadline stops CPU consumption within a
// bounded amount of work.  A cancelled keyed count never poisons the
// session memo — its entry is evicted and the next request recomputes.
package engine
