package engine

import (
	"sync"
	"testing"

	"repro/internal/workload"
)

// Arena allocations must have exact capacity (spare capacity would alias
// the chunk remainder handed to the next allocation) and free must
// return every pooled chunk to the process pools.
func TestArenaExactCapacityAndFree(t *testing.T) {
	base := ArenaChunksLive()
	a := &arena{}
	s1 := a.allocI32(100)
	if len(s1) != 100 || cap(s1) != 100 {
		t.Fatalf("allocI32(100): len %d cap %d, want 100/100", len(s1), cap(s1))
	}
	s2 := a.allocI32(50)
	for i := range s1 {
		s1[i] = 1
	}
	for i := range s2 {
		s2[i] = 2
	}
	for _, v := range s1 {
		if v != 1 {
			t.Fatal("adjacent arena allocations alias")
		}
	}
	z := a.allocI32Zero(64)
	for _, v := range z {
		if v != 0 {
			t.Fatal("allocI32Zero returned dirty cells")
		}
	}
	u := a.allocU64(1000)
	if len(u) != 1000 || cap(u) != 1000 {
		t.Fatalf("allocU64(1000): len %d cap %d", len(u), cap(u))
	}
	// Oversized allocations bypass the pools entirely.
	huge := a.allocI32(arenaChunkI32 + 1)
	if len(huge) != arenaChunkI32+1 {
		t.Fatal("oversized allocation wrong length")
	}
	if ArenaChunksLive() <= base {
		t.Fatal("pooled chunks not accounted as live")
	}
	a.free()
	if live := ArenaChunksLive(); live != base {
		t.Fatalf("free left %d chunks live, want %d", live, base)
	}
	// A dead arena degrades to plain heap allocation.
	h := a.allocI32(10)
	if len(h) != 10 {
		t.Fatal("dead arena fallback failed")
	}
	if ArenaChunksLive() != base {
		t.Fatal("dead arena drew from the pools")
	}
}

// The pin protocol: counts racing session retirement must either hold
// the arena alive (pin won) or fall back to heap-backed rebuilds (pin
// lost after free) — never corrupt results.  Exercised under -race.
func TestSessionPinRetireRace(t *testing.T) {
	sig := workload.EdgeSig()
	p := compilePP(t, sig, "q(x,y,z) := E(x,y) & E(y,z)")
	pl, err := Compile(p, FPT)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		b := workload.RandomStructure(sig, 8, 0.5, int64(trial))
		s := SessionFor(b)
		want, err := pl.CountIn(s)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Post-retirement counts rebuild heap-backed tables; the
				// value must be unchanged either way.
				got, err := pl.(*fptPlan).countIn(nil, s, 1)
				if err != nil {
					t.Error(err)
					return
				}
				if got.Cmp(want) != 0 {
					t.Errorf("trial %d: count %v after retirement race, want %v", trial, got, want)
				}
			}()
		}
		ReleaseSession(b)
		wg.Wait()
	}
}
