package engine

import "testing"

// Direct semi-join prune benchmarks over chain components on layered
// DAGs — the two fixpoint regimes:
//
//   - Trickle: a deep target, so every round trims another boundary
//     layer's rows while most rows survive to the cap.  This is the
//     regime where per-round table copies and support rescans hurt.
//   - Empties: a shallow target that cannot hold the chain, so the
//     supports collapse and the pass decides the count is zero.
//
// Each iteration rebinds the tables to a fresh arena (prune never
// mutates its inputs) so compaction cost is measured without unbounded
// arena growth.
func benchPrune(b *testing.B, nvars, layers, width, deg int) {
	pc := chainComponent(nvars)
	base, dom := layeredEdgeTables(nvars-1, layers, width, deg, 7, &arena{})
	tables := make([]*Table, len(base))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ar := &arena{}
		for ci, t := range base {
			tt := newTable(t.width, t.dom, ar)
			tt.flat, tt.n = t.flat, t.n
			tables[ci] = tt
		}
		semiJoinPrune(pc, tables, dom)
		ar.free()
	}
}

func BenchmarkSemiJoinPrune_Trickle_Deep12(b *testing.B)   { benchPrune(b, 9, 12, 256, 6) }
func BenchmarkSemiJoinPrune_Empties_Shallow4(b *testing.B) { benchPrune(b, 7, 4, 256, 6) }

func BenchmarkSemiJoinPrune_Trickle_Chain24(b *testing.B) { benchPrune(b, 24, 30, 128, 6) }
