package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/structure"
	"repro/internal/workload"
)

// appendRandomBatch grows b by a few random edges (and occasionally a
// fresh element), returning how many tuples it actually added.
func appendRandomBatch(t *testing.T, b *structure.Structure, rng *rand.Rand, step int) int {
	t.Helper()
	if step%4 == 3 {
		b.EnsureElem(fmt.Sprintf("delta-extra-%d", step))
	}
	added := 0
	n := b.Size()
	for i := 0; i < 1+rng.Intn(4); i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		was := b.Rel("E").Len()
		if err := b.AddTuple("E", u, v); err != nil {
			t.Fatal(err)
		}
		if b.Rel("E").Len() > was {
			added++
		}
	}
	return added
}

// Delta-maintained counts must equal full recounts at every version.
// The thresholds force the delta path for every advance; the reference
// is a fresh session's full recount (and the brute engine as a second
// opinion on the final version).
func TestDeltaAdvanceDifferential(t *testing.T) {
	restore := SetDeltaThresholds(1<<30, 100)
	defer restore()
	sig := workload.EdgeSig()
	queries := []string{
		"q(x,y,z) := E(x,y) & E(y,z) & E(z,x)",
		"q(w,x,y,z) := E(w,x) & E(x,y) & E(y,z)",
		"q(x,y,z) := E(x,y) & E(z,z)",                     // multiple components, one with a free variable
		"q(s,t) := exists u, v. E(s,u) & E(u,v) & E(v,t)", // not delta-maintainable: must fall back cleanly
	}
	for qi, src := range queries {
		p := compilePP(t, sig, src)
		pl, err := Compile(p, FPT)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := Compile(p, Brute)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(qi) + 7))
		b := workload.RandomStructure(sig, 5, 0.25, int64(qi))
		fp := fmt.Sprintf("delta-differential-%d", qi)
		for step := 0; step < 12; step++ {
			appendRandomBatch(t, b, rng, step)
			got, _, err := CountKeyed(pl, fp, SessionFor(b), 0)
			if err != nil {
				t.Fatalf("%s step %d: %v", src, step, err)
			}
			want, err := pl.CountIn(NewSession(b))
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(want) != 0 {
				t.Fatalf("%s step %d: delta-maintained %v != full recount %v", src, step, got, want)
			}
		}
		want, err := ref.Count(b)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := CountKeyed(pl, fp, SessionFor(b), 0)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("%s: delta-maintained %v != brute %v", src, got, want)
		}
	}
	if DeltaStats().Advances == 0 {
		t.Fatal("differential run never exercised the delta advance path")
	}
}

// An element-only append (no new tuples) must advance cheaply and still
// rescale the free-variable factors to the grown universe.
func TestDeltaAdvanceUniverseGrowth(t *testing.T) {
	restore := SetDeltaThresholds(1<<30, 100)
	defer restore()
	sig := workload.EdgeSig()
	p := compilePP(t, sig, "q(x,y,z) := E(x,y) & E(z,z)")
	pl, err := Compile(p, FPT)
	if err != nil {
		t.Fatal(err)
	}
	b := workload.RandomStructure(sig, 4, 0.5, 11)
	if err := b.AddTuple("E", 0, 0); err != nil { // make the count non-zero for sure
		t.Fatal(err)
	}
	fp := "delta-universe-growth"
	if _, _, err := CountKeyed(pl, fp, SessionFor(b), 0); err != nil {
		t.Fatal(err)
	}
	adv := DeltaStats().Advances
	b.EnsureElem("fresh-element")
	got, _, err := CountKeyed(pl, fp, SessionFor(b), 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := pl.CountIn(NewSession(b))
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(want) != 0 {
		t.Fatalf("after element-only append: delta-maintained %v != full recount %v", got, want)
	}
	if DeltaStats().Advances == adv {
		t.Fatal("element-only append did not take the advance path")
	}
}

// Over-threshold batches must fall back to a full recount (and count it
// in the telemetry) while still returning correct values.
func TestDeltaThresholdFallback(t *testing.T) {
	restore := SetDeltaThresholds(0, 0)
	defer restore()
	sig := workload.EdgeSig()
	p := compilePP(t, sig, "q(x,y,z) := E(x,y) & E(y,z) & E(z,x)")
	pl, err := Compile(p, FPT)
	if err != nil {
		t.Fatal(err)
	}
	b := workload.RandomStructure(sig, 5, 0.4, 3)
	fp := "delta-threshold-fallback"
	if _, _, err := CountKeyed(pl, fp, SessionFor(b), 0); err != nil {
		t.Fatal(err)
	}
	full := DeltaStats().FullRecounts
	rng := rand.New(rand.NewSource(42))
	for step := 0; ; step++ {
		if appendRandomBatch(t, b, rng, 1) > 0 {
			break
		}
		if step > 100 {
			t.Fatal("could not grow the random structure")
		}
	}
	got, _, err := CountKeyed(pl, fp, SessionFor(b), 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := pl.CountIn(NewSession(b))
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(want) != 0 {
		t.Fatalf("threshold fallback: %v != full recount %v", got, want)
	}
	if DeltaStats().FullRecounts == full {
		t.Fatal("zero thresholds did not force the full-recount fallback")
	}
}

// With the delta path disabled the keyed pipeline must behave exactly
// like the pre-delta engine: plain recounts, no advances.
func TestDeltaDisabledRecounts(t *testing.T) {
	restoreT := SetDeltaThresholds(1<<30, 100)
	defer restoreT()
	restore := SetDeltaEnabled(false)
	defer restore()
	sig := workload.EdgeSig()
	p := compilePP(t, sig, "q(x,y,z) := E(x,y) & E(y,z) & E(z,x)")
	pl, err := Compile(p, FPT)
	if err != nil {
		t.Fatal(err)
	}
	b := workload.RandomStructure(sig, 5, 0.4, 5)
	fp := "delta-disabled"
	adv := DeltaStats().Advances
	if _, _, err := CountKeyed(pl, fp, SessionFor(b), 0); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	appendRandomBatch(t, b, rng, 0)
	got, _, err := CountKeyed(pl, fp, SessionFor(b), 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := pl.CountIn(NewSession(b))
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(want) != 0 {
		t.Fatalf("disabled delta: %v != full recount %v", got, want)
	}
	if DeltaStats().Advances != adv {
		t.Fatal("advance ran while the delta path was disabled")
	}
}

// Advanceable memos must not outlive their structure's registry entry:
// priors live inside the session, so LRU eviction and ReleaseSession
// free them, and the registry stays within its cap no matter how many
// structures carry version-stamped memo state.
func TestAdvanceableMemosFreedWithSessions(t *testing.T) {
	restore := SetDeltaThresholds(1<<30, 100)
	defer restore()
	sig := workload.EdgeSig()
	p := compilePP(t, sig, "q(x,y,z) := E(x,y) & E(y,z) & E(z,x)")
	pl, err := Compile(p, FPT)
	if err != nil {
		t.Fatal(err)
	}
	before := SessionStats()
	arenaBaseline := ArenaChunksLive()
	var structs []*structure.Structure
	for i := 0; i < sessionCacheCap+8; i++ {
		b := workload.RandomStructure(sig, 5, 0.4, int64(i))
		if _, _, err := CountKeyed(pl, "delta-leak", SessionFor(b), 0); err != nil {
			t.Fatal(err)
		}
		structs = append(structs, b)
	}
	st := SessionStats()
	if st.Sessions > st.Cap {
		t.Fatalf("session registry above cap despite advanceable memos: %+v", st)
	}
	if st.Evictions == before.Evictions {
		t.Fatal("filling the registry past cap evicted nothing")
	}

	// A still-cached structure carries its settled counts across a
	// version bump...
	hot := structs[len(structs)-1]
	if err := hot.AddTuple("E", 0, 1); err != nil {
		t.Fatal(err)
	}
	if hot.Rel("E").Len() == 0 {
		t.Fatal("bump added nothing")
	}
	sHot := SessionFor(hot)
	sHot.mu.Lock()
	adopted := len(sHot.prior)
	sHot.mu.Unlock()
	if adopted == 0 {
		t.Fatal("warm session lost its advanceable prior across a version bump")
	}
	// ...but dropping the registry entry frees the chain: the next
	// session starts cold.
	ReleaseSession(hot)
	sCold := SessionFor(hot)
	sCold.mu.Lock()
	cold := len(sCold.prior)
	sCold.mu.Unlock()
	if cold != 0 {
		t.Fatal("advanceable memos survived ReleaseSession")
	}
	sessionMu.Lock()
	_, present := sessions[structs[0]]
	sessionMu.Unlock()
	if present {
		t.Fatal("oldest structure expected to be LRU-evicted by now")
	}

	// Arena memory follows the same lifecycle: releasing every remaining
	// registry entry must return all of this test's pooled chunks, so the
	// live-chunk gauge falls back to (at most) where it started — LRU
	// evictions above may have freed chunks of other tests' sessions too.
	for _, b := range structs {
		ReleaseSession(b)
	}
	if live := ArenaChunksLive(); live > arenaBaseline {
		t.Fatalf("arena chunks leaked across session eviction: %d live, baseline %d", live, arenaBaseline)
	}
}
