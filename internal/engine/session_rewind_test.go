package engine

import (
	"math/big"
	"testing"

	"repro/internal/structure"
)

// rewindTestStructure builds a small mutable structure.
func rewindTestStructure(t *testing.T) *structure.Structure {
	t.Helper()
	sig, err := structure.NewSignature(structure.RelSym{Name: "E", Arity: 2})
	if err != nil {
		t.Fatal(err)
	}
	b := structure.New(sig)
	for _, e := range []string{"a", "b", "c"} {
		if _, err := b.AddElem(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddTuple("E", 0, 1); err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSessionForCarriesPriorsForward: a session replaced because the
// structure's version ADVANCED adopts the settled counts as priors (the
// delta path can reconcile them forward).
func TestSessionForCarriesPriorsForward(t *testing.T) {
	b := rewindTestStructure(t)
	defer ReleaseSession(b)
	s1 := SessionFor(b)
	s1.mu.Lock()
	s1.prior = map[countKey]priorCount{
		{fp: "fake", name: FPT}: {v: big.NewInt(42), snap: s1.snap},
	}
	s1.mu.Unlock()

	if err := b.AddTuple("E", 1, 2); err != nil {
		t.Fatal(err)
	}
	s2 := SessionFor(b)
	if s2 == s1 {
		t.Fatalf("stale session not replaced")
	}
	if len(s2.prior) != 1 || s2.prior[countKey{fp: "fake", name: FPT}].v.Int64() != 42 {
		t.Fatalf("forward version bump dropped priors: %+v", s2.prior)
	}
}

// TestSessionForRewindDropsPriors: if the cached session's version is
// AHEAD of the structure's current version — the structure was rebuilt
// or replaced underneath the registry, e.g. by recovery tooling — the
// replacement session must NOT adopt priors: there is no append delta
// from the future back to the present, so advancing them would produce
// wrong counts.
func TestSessionForRewindDropsPriors(t *testing.T) {
	b := rewindTestStructure(t)
	defer ReleaseSession(b)
	s1 := SessionFor(b)
	s1.mu.Lock()
	s1.prior = map[countKey]priorCount{
		{fp: "fake", name: FPT}: {v: big.NewInt(42), snap: s1.snap},
	}
	// Simulate the structure having been swapped for an older version:
	// the cached session believes it is far in the future.
	s1.version = b.Version() + 100
	s1.mu.Unlock()

	s2 := SessionFor(b)
	if s2 == s1 {
		t.Fatalf("stale session not replaced")
	}
	if s2.prior != nil {
		t.Fatalf("rewound session leaked priors into its successor: %+v", s2.prior)
	}
	if s2.version != b.Version() {
		t.Fatalf("replacement session version %d, want %d", s2.version, b.Version())
	}
}
