package engine

import (
	"context"
	"math/big"

	"repro/internal/hom"
	"repro/internal/pp"
	"repro/internal/structure"
)

// cancelPoll is the cooperative cancellation check of the simple
// (brute, projection) engines.  Unlike the executor's throttled
// per-row polling, it consults the done channel on every call: each
// unit of work here is a full homomorphism/extendability check — far
// more expensive than a non-blocking channel poll — so cancellation
// latency stays one check, not thousands.  The verdict latches; a nil
// done channel makes every call a single comparison.
type cancelPoll struct {
	done <-chan struct{}
	hit  bool
}

func newCancelPoll(ctx context.Context) *cancelPoll {
	if ctx == nil {
		return &cancelPoll{}
	}
	return &cancelPoll{done: ctx.Done()}
}

func (c *cancelPoll) cancelled() bool {
	if c.done == nil {
		return false
	}
	if c.hit {
		return true
	}
	select {
	case <-c.done:
		c.hit = true
		return true
	default:
		return false
	}
}

// brutePlan enumerates every f : S → B and checks extendability — the
// reference semantics.  Nothing is precompiled; the plan is the formula.
type brutePlan struct {
	p pp.PP
}

func (pl *brutePlan) Engine() Name   { return Brute }
func (pl *brutePlan) Formula() pp.PP { return pl.p }

func (pl *brutePlan) Count(b *structure.Structure) (*big.Int, error) {
	if err := checkStructure(pl.p, b); err != nil {
		return nil, err
	}
	return pl.count(b, &cancelPoll{}), nil
}

func (pl *brutePlan) CountIn(s *Session) (*big.Int, error) { return pl.Count(s.B) }

// CountInCtx polls ctx once per enumerated liberal assignment (before
// each extendability check) and aborts with ctx's error when it fires.
func (pl *brutePlan) CountInCtx(ctx context.Context, s *Session, _ int) (*big.Int, error) {
	if err := checkStructure(pl.p, s.B); err != nil {
		return nil, err
	}
	poll := newCancelPoll(ctx)
	v := pl.count(s.B, poll)
	if poll.hit {
		return nil, ctxAbortErr(ctx)
	}
	return v, nil
}

func (pl *brutePlan) count(b *structure.Structure, poll *cancelPoll) *big.Int {
	p := pl.p
	n := b.Size()
	total := new(big.Int)
	one := big.NewInt(1)
	pin := make(map[int]int, len(p.S))
	var rec func(i int)
	rec = func(i int) {
		if poll.hit {
			return
		}
		if i == len(p.S) {
			if poll.cancelled() {
				return
			}
			cp := make(map[int]int, len(pin))
			for k, v := range pin {
				cp[k] = v
			}
			if hom.Exists(p.A, b, hom.Options{Pin: cp}) {
				total.Add(total, one)
			}
			return
		}
		for e := 0; e < n; e++ {
			pin[p.S[i]] = e
			rec(i + 1)
		}
		delete(pin, p.S[i])
	}
	rec(0)
	return total
}

// projectionPlan counts per component (|φ(B)| = ∏|φᵢ(B)|, Section 2.1) and
// enumerates extendable liberal assignments with the propagating solver.
// The component split is done at compile time.
type projectionPlan struct {
	p     pp.PP
	comps []pp.PP
}

func newProjectionPlan(p pp.PP) *projectionPlan {
	return &projectionPlan{p: p, comps: p.Components()}
}

func (pl *projectionPlan) Engine() Name   { return Projection }
func (pl *projectionPlan) Formula() pp.PP { return pl.p }

func (pl *projectionPlan) Count(b *structure.Structure) (*big.Int, error) {
	if err := checkStructure(pl.p, b); err != nil {
		return nil, err
	}
	return pl.count(b, &cancelPoll{}), nil
}

func (pl *projectionPlan) CountIn(s *Session) (*big.Int, error) { return pl.Count(s.B) }

// CountInCtx polls ctx between components and once per enumerated
// extendable assignment, aborting with ctx's error when it fires.
func (pl *projectionPlan) CountInCtx(ctx context.Context, s *Session, _ int) (*big.Int, error) {
	if err := checkStructure(pl.p, s.B); err != nil {
		return nil, err
	}
	poll := newCancelPoll(ctx)
	v := pl.count(s.B, poll)
	if poll.hit {
		return nil, ctxAbortErr(ctx)
	}
	return v, nil
}

func (pl *projectionPlan) count(b *structure.Structure, poll *cancelPoll) *big.Int {
	total := big.NewInt(1)
	for _, comp := range pl.comps {
		if poll.cancelled() {
			return total
		}
		factor := new(big.Int)
		if len(comp.S) == 0 {
			if hom.Exists(comp.A, b, hom.Options{}) {
				factor.SetInt64(1)
			}
		} else if comp.A.NumTuples() == 0 {
			// Isolated liberal variables: every assignment works.
			factor = structure.PowerSize(b, len(comp.S))
		} else {
			one := big.NewInt(1)
			hom.ForEachExtendable(comp.A, b, comp.S, hom.Options{}, func([]int) bool {
				factor.Add(factor, one)
				return !poll.cancelled()
			})
		}
		if factor.Sign() == 0 {
			return new(big.Int)
		}
		total.Mul(total, factor)
	}
	return total
}

// checkStructure validates the structure and its signature against the
// plan's formula; shared by every engine.
func checkStructure(p pp.PP, b *structure.Structure) error {
	if err := b.Validate(); err != nil {
		return err
	}
	if !p.A.Signature().Equal(b.Signature()) {
		return errSignature(p, b)
	}
	return nil
}
