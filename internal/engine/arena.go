package engine

import (
	"sync"
	"sync/atomic"
)

// Per-session arena allocation: constraint-table rows and prefix-index
// slots are carved out of fixed-size chunks drawn from process-wide
// pools, so steady-state counting re-uses the same memory instead of
// churning the garbage collector, and a session's entire table memory
// returns to the pools in O(chunks) when the session is retired
// (SessionFor replacement, LRU eviction, ReleaseSession).
//
// Lifetime is tied to the session through reference counting
// (Session.acquirePin/releasePin): executor entry points pin the session
// for the duration of a count, retirement frees the chunks only once the
// last pin drops, and a stale session used after its arena was freed
// degrades safely to plain heap allocation (the arena is marked dead and
// its memo maps were wiped, so nothing can point into recycled chunks).

// arenaChunkI32 is the chunk granularity of the int32 pool: 64Ki cells,
// 256 KiB.  Allocations larger than a chunk get a dedicated heap slice
// that is not recycled (rare: only tables past ~64k cells).
const arenaChunkI32 = 1 << 16

// arenaChunkU64 is the chunk granularity of the uint64 pool: 32Ki
// slots, 256 KiB.
const arenaChunkU64 = 1 << 15

var (
	chunkPoolI32 = sync.Pool{New: func() any { return make([]int32, arenaChunkI32) }}
	chunkPoolU64 = sync.Pool{New: func() any { return make([]uint64, arenaChunkU64) }}
)

// arenaChunksLive counts pooled chunks currently held by live arenas —
// the balance the session-eviction leak test asserts returns to its
// baseline.  (Chunks inside the pools are not "live": they are shared
// standby capacity.)
var arenaChunksLive atomic.Int64

// ArenaChunksLive reports the number of pooled arena chunks currently
// held by live sessions (telemetry; exposed for leak tests and stats).
func ArenaChunksLive() int64 { return arenaChunksLive.Load() }

// arena is one session's chunked allocator.  Allocations are bump
// pointers into the current chunk of each element type; free returns
// every pooled chunk and marks the arena dead, after which further
// allocations fall back to the heap.  Safe for concurrent use (table
// materialization and index binding run concurrently across plans).
type arena struct {
	mu     sync.Mutex
	curI32 []int32
	curU64 []uint64
	ownI32 [][]int32
	ownU64 [][]uint64
	dead   bool
}

// allocI32 returns a fresh []int32 of length and capacity exactly n
// (full capacity: callers append up to cap, and spare capacity would
// alias the chunk remainder handed to the next allocation).  Contents
// are unspecified — callers must not read before writing.
func (a *arena) allocI32(n int) []int32 {
	if n == 0 {
		return nil
	}
	if a == nil {
		return make([]int32, n)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.dead {
		return make([]int32, n)
	}
	if n > arenaChunkI32 {
		return make([]int32, n) // oversized: dedicated, not recycled
	}
	if len(a.curI32) < n {
		c := chunkPoolI32.Get().([]int32)
		arenaChunksLive.Add(1)
		a.ownI32 = append(a.ownI32, c)
		a.curI32 = c
	}
	out := a.curI32[:n:n]
	a.curI32 = a.curI32[n:]
	return out
}

// allocI32Zero is allocI32 with the cells cleared.
func (a *arena) allocI32Zero(n int) []int32 {
	out := a.allocI32(n)
	for i := range out {
		out[i] = 0
	}
	return out
}

// allocU64 is allocI32 for uint64 slots.
func (a *arena) allocU64(n int) []uint64 {
	if n == 0 {
		return nil
	}
	if a == nil {
		return make([]uint64, n)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.dead {
		return make([]uint64, n)
	}
	if n > arenaChunkU64 {
		return make([]uint64, n)
	}
	if len(a.curU64) < n {
		c := chunkPoolU64.Get().([]uint64)
		arenaChunksLive.Add(1)
		a.ownU64 = append(a.ownU64, c)
		a.curU64 = c
	}
	out := a.curU64[:n:n]
	a.curU64 = a.curU64[n:]
	return out
}

// free returns every pooled chunk and marks the arena dead.  The caller
// (Session retirement) guarantees nothing references arena memory any
// more: the session's table and plan memos are wiped in the same
// critical section.
func (a *arena) free() {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.dead {
		return
	}
	a.dead = true
	for _, c := range a.ownI32 {
		chunkPoolI32.Put(c[:arenaChunkI32])
		arenaChunksLive.Add(-1)
	}
	for _, c := range a.ownU64 {
		chunkPoolU64.Put(c[:arenaChunkU64])
		arenaChunksLive.Add(-1)
	}
	a.ownI32, a.ownU64, a.curI32, a.curU64 = nil, nil, nil, nil
}
