package engine

import (
	"testing"

	"repro/internal/parser"
	"repro/internal/pp"
	"repro/internal/structure"
	"repro/internal/workload"
)

// Materialization benchmarks: a fresh Session per iteration forces the
// constraint tables to be rebuilt from the structure every time, isolating
// the structure → table path (fingerprint + projection + dedup) that the
// columnar store feeds.

func benchCompilePP(b *testing.B, sig *structure.Signature, src string) pp.PP {
	b.Helper()
	q, err := parser.ParseQuery(src)
	if err != nil {
		b.Fatal(err)
	}
	p, err := pp.FromDisjunct(sig, q.Lib, q.Disjuncts()[0])
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func benchMaterializeFresh(b *testing.B, src string, n int, avgDeg float64) {
	b.Helper()
	sig := workload.EdgeSig()
	p := benchCompilePP(b, sig, src)
	pl, err := Compile(p, FPTNoCore)
	if err != nil {
		b.Fatal(err)
	}
	bs := workload.GraphStructure(workload.ER(n, avgDeg/float64(n), int64(n)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSession(bs)
		if _, err := pl.CountIn(s); err != nil {
			b.Fatal(err)
		}
	}
}

// Liberal path query: every constraint is an atom table projected off E.
func BenchmarkMaterialize_Path4_N1000(b *testing.B) {
	benchMaterializeFresh(b, "q(a,b,c,d,e) := E(a,b) & E(b,c) & E(c,d) & E(d,e)", 1000, 4.0)
}

func BenchmarkMaterialize_Path4_N4000(b *testing.B) {
	benchMaterializeFresh(b, "q(a,b,c,d,e) := E(a,b) & E(b,c) & E(c,d) & E(d,e)", 4000, 4.0)
}

// Quantified tail: one ∃-component predicate table enumerated by the hom
// solver plus atom tables, on a large structure.
func BenchmarkMaterialize_PredTail_N1000(b *testing.B) {
	benchMaterializeFresh(b, "q(a,b,c) := exists u, v. E(a,b) & E(b,c) & E(c,u) & E(u,v)", 1000, 3.0)
}
