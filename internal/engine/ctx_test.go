package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pp"
	"repro/internal/workload"
)

func TestRunBoundedCtxCancelStopsNewWork(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	err := RunBoundedCtx(ctx, 1000, 4, func(i int) error {
		started.Add(1)
		if started.Load() == 8 {
			cancel()
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Workers observe the cancellation before taking their next index;
	// at most one in-flight task per worker can have started after it.
	if n := started.Load(); n > 16 {
		t.Fatalf("%d tasks started after cancellation of a 4-worker pool", n)
	}
}

func TestRunBoundedCtxSerialCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	err := RunBoundedCtx(ctx, 100, 1, func(i int) error {
		ran++
		if ran == 3 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 3 {
		t.Fatalf("ran %d tasks after cancellation, want 3", ran)
	}
}

func TestRunBoundedCtxCompletesWithoutCancel(t *testing.T) {
	if err := RunBoundedCtx(context.Background(), 50, 4, func(int) error { return nil }); err != nil {
		t.Fatalf("err = %v", err)
	}
}

// compileTestPlan compiles a canned pp-formula shape for an engine (built
// from workload helpers to avoid an import cycle with the parser).
func compileTestPlan(t *testing.T, shape string, name Name) Plan {
	t.Helper()
	var (
		p   pp.PP
		err error
	)
	switch shape {
	case "triangle":
		// x,y,z free, pairwise adjacent — a dense joinable core.
		p, err = pp.New(workload.GraphStructure(workload.CompleteGraph(3)), []int{0, 1, 2})
	default:
		p, err = pp.New(workload.GraphStructure(workload.PathGraph(4)), []int{0, 1, 2, 3})
	}
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Compile(p, name)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// TestCountInCtxPreCancelled: a context that is already done returns its
// error without executing.
func TestCountInCtxPreCancelled(t *testing.T) {
	pl := compileTestPlan(t, "triangle", FPT)
	b := workload.RandomStructure(workload.EdgeSig(), 30, 0.3, 7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CountInCtx(ctx, pl, SessionFor(b), 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCountInCtxAbortMidRun: a deadline that fires mid-execution aborts
// the FPT executor well before the full enumeration would finish, and a
// subsequent un-cancelled run on the same session still produces the
// correct count (the abort discards partial state and does not poison
// any cache).
func TestCountInCtxAbortMidRun(t *testing.T) {
	restore := SetParallelThresholds(1, 1)
	defer restore()
	pl := compileTestPlan(t, "triangle", FPT)
	// Dense 250-vertex graph: the triangle join-count is far too much
	// work for a 1ms deadline on any machine.
	b := workload.RandomStructure(workload.EdgeSig(), 250, 0.5, 11)
	s := SessionFor(b)

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := CountInCtx(ctx, pl, s, 2)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}

	want, err := pl.CountIn(SessionFor(b))
	if err != nil {
		t.Fatal(err)
	}
	got, err := CountInCtx(context.Background(), pl, SessionFor(b), 2)
	if err != nil {
		t.Fatal(err)
	}
	if want.Cmp(got) != 0 {
		t.Fatalf("post-abort count %v != %v", got, want)
	}
}

// TestCountKeyedCtxMemoNotPoisoned: a cancelled keyed count must not
// leave its error in the session memo; the next keyed request
// recomputes and succeeds.
func TestCountKeyedCtxMemoNotPoisoned(t *testing.T) {
	pl := compileTestPlan(t, "triangle", FPT)
	b := workload.RandomStructure(workload.EdgeSig(), 250, 0.5, 13)
	s := SessionFor(b)
	const fp = "test-fingerprint"

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, _, err := CountKeyedCtx(ctx, pl, fp, s, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}

	v, hit, err := CountKeyedCtx(context.Background(), pl, fp, s, 1)
	if err != nil {
		t.Fatalf("recompute after cancelled memo entry: %v", err)
	}
	if hit {
		t.Fatalf("cancelled entry should have been evicted, got a memo hit")
	}
	want, err := pl.CountIn(s)
	if err != nil {
		t.Fatal(err)
	}
	if v.Cmp(want) != 0 {
		t.Fatalf("recomputed count %v != %v", v, want)
	}
}

// TestCountKeyedCtxHealthyWaiterRetries: a caller with a live context
// that parks on a computation driven by another caller's short deadline
// must not surface that caller's cancellation — it retries and gets the
// correct count.
func TestCountKeyedCtxHealthyWaiterRetries(t *testing.T) {
	pl := compileTestPlan(t, "triangle", FPT)
	b := workload.RandomStructure(workload.EdgeSig(), 250, 0.5, 37)
	s := SessionFor(b)
	const fp = "waiter-retry-fingerprint"

	shortCtx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	var (
		wg       sync.WaitGroup
		shortErr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, shortErr = CountKeyedCtx(shortCtx, pl, fp, s, 1)
	}()
	time.Sleep(200 * time.Microsecond) // let the short-deadline caller start computing
	v, _, err := CountKeyedCtx(context.Background(), pl, fp, s, 1)
	wg.Wait()
	if !errors.Is(shortErr, context.DeadlineExceeded) {
		t.Fatalf("short-deadline caller err = %v, want context.DeadlineExceeded", shortErr)
	}
	if err != nil {
		t.Fatalf("healthy caller err = %v (another caller's deadline leaked)", err)
	}
	want, err := pl.CountIn(s)
	if err != nil {
		t.Fatal(err)
	}
	if v.Cmp(want) != 0 {
		t.Fatalf("healthy caller count %v != %v", v, want)
	}
}

// Cancellation must also reach the simple engines' enumerations.
func TestSimpleEnginesCountInCtx(t *testing.T) {
	b := workload.RandomStructure(workload.EdgeSig(), 26, 0.4, 5)
	for _, name := range []Name{Brute, Projection} {
		pl := compileTestPlan(t, "path", name)
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		start := time.Now()
		_, err := CountInCtx(ctx, pl, SessionFor(b), 1)
		cancel()
		if name == Brute {
			// 26^4 pinned hom checks cannot finish in 1ms; the brute
			// engine must abort with the deadline error.
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("%v: err = %v, want context.DeadlineExceeded", name, err)
			}
			if el := time.Since(start); el > 5*time.Second {
				t.Fatalf("%v: cancellation took %v", name, el)
			}
		} else if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("%v: err = %v", name, err)
		}
	}
}
