package engine

import (
	"math/rand"
	"testing"

	"repro/internal/structure"
	"repro/internal/workload"
)

// buildMapIndexRef is the pre-open-addressing reference: the map-backed
// prefix index the packed path replaced.  Differential tests pin the
// open-addressing index against it row for row.
func buildMapIndexRef(t *Table, pos []int) map[uint64][]int32 {
	codec := newKeyCodec(t.dom, len(pos))
	ref := make(map[uint64][]int32, t.n)
	vals := make([]int, len(pos))
	for r := 0; r < t.n; r++ {
		base := r * t.width
		for i, j := range pos {
			vals[i] = int(t.flat[base+j])
		}
		k := codec.pack(vals)
		ref[k] = append(ref[k], int32(r))
	}
	return ref
}

func randomTable(rng *rand.Rand, n, width, dom int, ar *arena) *Table {
	space := 1
	for i := 0; i < width && space < n; i++ {
		space *= dom
	}
	if n > space {
		n = space
	}
	t := newTable(width, dom, ar)
	row := make([]int, width)
	seen := structure.NewTupleSet(width)
	for seen.Len() < n {
		for i := range row {
			row[i] = rng.Intn(dom)
		}
		if seen.Add(row) {
			t.appendRow(row)
		}
	}
	return t
}

// The open-addressing prefix index must return exactly the reference
// map's row lists — same rows, same (ascending) order — across table
// sizes, prefix widths, and both heap- and arena-backed storage.
func TestPrefixIndexDifferentialVsMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ar := &arena{}
	defer ar.free()
	for trial := 0; trial < 40; trial++ {
		dom := 2 + rng.Intn(12)
		width := 1 + rng.Intn(4)
		maxN := dom * dom * width // keep the tuple space saturable
		n := rng.Intn(maxN)
		var owner *arena
		if trial%2 == 0 {
			owner = ar
		}
		tb := randomTable(rng, n, width, dom, owner)
		var pos []int
		for j := 0; j < width; j++ {
			if rng.Intn(2) == 0 {
				pos = append(pos, j)
			}
		}
		if len(pos) == 0 {
			pos = []int{rng.Intn(width)}
		}
		ix := tb.prefixIndex(pos)
		if !ix.codec.packed {
			t.Fatalf("trial %d: expected the packed codec", trial)
		}
		ref := buildMapIndexRef(tb, pos)
		for k, want := range ref {
			got := ix.probe(k)
			if len(got) != len(want) {
				t.Fatalf("trial %d: probe(%d) returned %d rows, want %d", trial, k, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d: probe(%d)[%d] = %d, want %d", trial, k, i, got[i], want[i])
				}
			}
		}
		// Absent keys (including ones past the packed range) probe empty.
		for miss := 0; miss < 50; miss++ {
			k := rng.Uint64()
			if _, present := ref[k]; present {
				continue
			}
			if got := ix.probe(k); len(got) != 0 {
				t.Fatalf("trial %d: probe(absent %d) = %v, want empty", trial, k, got)
			}
		}
	}
}

// Index edge cases: empty tables, single-row tables, a fully-bound
// scope (every position in the prefix, so each probe pins one row), and
// the spill codec — each checked against the map reference.
func TestPrefixIndexEdgeCases(t *testing.T) {
	t.Run("EmptyTable", func(t *testing.T) {
		tb := newTable(2, 5, nil)
		ix := tb.prefixIndex([]int{0})
		for k := uint64(0); k < 8; k++ {
			if got := ix.probe(k); len(got) != 0 {
				t.Fatalf("probe(%d) on empty table = %v", k, got)
			}
		}
	})
	t.Run("SingleRow", func(t *testing.T) {
		tb := newTable(3, 7, nil)
		tb.appendRow([]int{4, 2, 6})
		ix := tb.prefixIndex([]int{0, 2})
		if got := ix.probe(ix.codec.pack([]int{4, 6})); len(got) != 1 || got[0] != 0 {
			t.Fatalf("probe(hit) = %v, want [0]", got)
		}
		if got := ix.probe(ix.codec.pack([]int{4, 5})); len(got) != 0 {
			t.Fatalf("probe(miss) = %v, want empty", got)
		}
	})
	t.Run("FullyBoundScope", func(t *testing.T) {
		rng := rand.New(rand.NewSource(5))
		tb := randomTable(rng, 60, 3, 6, nil)
		pos := []int{0, 1, 2}
		ix := tb.prefixIndex(pos)
		ref := buildMapIndexRef(tb, pos)
		for k, want := range ref {
			if len(want) != 1 {
				t.Fatalf("dedup violated: key %d has %d rows", k, len(want))
			}
			got := ix.probe(k)
			if len(got) != 1 || got[0] != want[0] {
				t.Fatalf("probe(%d) = %v, want %v", k, got, want)
			}
		}
	})
	t.Run("SpillCodec", func(t *testing.T) {
		restore := SetPackedKeyBudget(0)
		defer restore()
		rng := rand.New(rand.NewSource(9))
		tb := randomTable(rng, 80, 3, 6, nil)
		ix := tb.prefixIndex([]int{0, 1})
		if ix.codec.packed {
			t.Fatal("expected the spill codec under a zero budget")
		}
		// The reference is built with an independent scan (the map path
		// itself is the spill implementation, so compare row sets).
		vals := make([]int, 2)
		for a := 0; a < 6; a++ {
			for b := 0; b < 6; b++ {
				vals[0], vals[1] = a, b
				var want []int32
				for r := 0; r < tb.n; r++ {
					if int(tb.flat[r*3]) == a && int(tb.flat[r*3+1]) == b {
						want = append(want, int32(r))
					}
				}
				got := ix.sk[spillKey(vals, nil)]
				if len(got) != len(want) {
					t.Fatalf("spill probe(%d,%d): %v, want %v", a, b, got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("spill probe(%d,%d): %v, want %v", a, b, got, want)
					}
				}
			}
		}
	})
}

// The per-table index cache must not grow without bound under a
// pathological workload binding many distinct position subsets, and it
// must keep the most recently probed subsets.
func TestTableIndexCacheCap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tb := randomTable(rng, 50, 12, 3, nil)
	// 12 singleton subsets + pairs: far more masks than the cap.
	for j := 0; j < tb.width; j++ {
		tb.prefixIndex([]int{j})
	}
	for j := 0; j+1 < tb.width; j++ {
		tb.prefixIndex([]int{j, j + 1})
	}
	tb.mu.Lock()
	size := len(tb.idx)
	tb.mu.Unlock()
	if size > tableIndexCacheCap {
		t.Fatalf("index cache holds %d entries, cap %d", size, tableIndexCacheCap)
	}
	// The most recent subset survives (cache hit returns the same index).
	last := []int{tb.width - 2, tb.width - 1}
	ix := tb.prefixIndex(last)
	if ix2 := tb.prefixIndex(last); ix2 != ix {
		t.Fatal("most recently built index was evicted on the next probe")
	}
	// An evicted subset rebuilds correctly.
	ref := buildMapIndexRef(tb, []int{0})
	ix0 := tb.prefixIndex([]int{0})
	for k, want := range ref {
		got := ix0.probe(k)
		if len(got) != len(want) {
			t.Fatalf("rebuilt index probe(%d) = %v, want %v", k, got, want)
		}
	}
}

// Executor differential across the structural edge shapes the bitmap
// and index rewrites touch: empty prefixes (a node whose scope shares
// no bound variable falls back to full enumeration), fully-bound
// scopes, and single-row relations — FPT must agree with brute force,
// with pruning and parallel thresholds forced on.
func TestExecutorEdgeShapesDifferential(t *testing.T) {
	restorePar := SetParallelThresholds(1, 1)
	defer restorePar()
	sig := workload.EdgeSig()
	queries := []string{
		"q(x) := E(x,x)",                         // single-position, self-loop rows
		"q(x,y) := E(x,y) & E(y,x)",              // fully-bound second step
		"q(x,y,z) := E(x,y) & E(z,z)",            // disconnected: z's table never shares a bound var
		"q(x,y,z,w) := E(x,y) & E(y,z) & E(z,w)", // chain: one-sided prefixes
		"q(x,y,z) := E(x,y) & E(y,z) & E(z,x)",   // cycle: two-sided prefix on the closer
		"q(x,y) := E(x,y) & E(x,x)",              // mixed bound/free on a shared variable
	}
	for seed := int64(0); seed < 3; seed++ {
		b := workload.RandomStructure(sig, 6, 0.5, seed)
		for _, q := range queries {
			p := compilePP(t, sig, q)
			fpt, err := Compile(p, FPT)
			if err != nil {
				t.Fatal(err)
			}
			brute, err := Compile(p, Brute)
			if err != nil {
				t.Fatal(err)
			}
			want, err := brute.Count(b)
			if err != nil {
				t.Fatal(err)
			}
			got, err := fpt.CountIn(NewSession(b))
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(want) != 0 {
				t.Fatalf("seed %d %q: fpt %v, brute %v", seed, q, got, want)
			}
		}
	}
}
