package engine

import (
	"math/rand"
	"testing"
)

func benchIndexSetup(b *testing.B) (*Table, []int, []uint64) {
	rng := rand.New(rand.NewSource(7))
	tb := randomTable(rng, 20000, 3, 40, nil)
	pos := []int{0, 1}
	codec := newKeyCodec(tb.dom, len(pos))
	keys := make([]uint64, 1024)
	vals := make([]int, 2)
	for i := range keys {
		// Half the probes hit existing rows, half are uniform misses.
		if i%2 == 0 {
			r := rng.Intn(tb.n)
			vals[0], vals[1] = int(tb.flat[r*3]), int(tb.flat[r*3+1])
		} else {
			vals[0], vals[1] = rng.Intn(tb.dom), rng.Intn(tb.dom)
		}
		keys[i] = codec.pack(vals)
	}
	return tb, pos, keys
}

// Open-addressing packed-key probe: the hot path every bound-prefix
// lookup in dpRun takes.  Must stay allocation-free.
func BenchmarkIndexProbe_OpenAddr(b *testing.B) {
	tb, pos, keys := benchIndexSetup(b)
	ix := tb.prefixIndex(pos)
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += len(ix.probe(keys[i&1023]))
	}
	_ = sink
}

// The replaced map[uint64][]int32 path, kept as the bench-compare
// reference for the probe microbenchmark.
func BenchmarkIndexProbe_MapRef(b *testing.B) {
	tb, pos, keys := benchIndexSetup(b)
	ref := buildMapIndexRef(tb, pos)
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += len(ref[keys[i&1023]])
	}
	_ = sink
}

// Index construction cost, both ways: the open-addressing build is two
// linear passes over the rows into arena-backed slots.
func BenchmarkIndexBuild_OpenAddr(b *testing.B) {
	tb, pos, _ := benchIndexSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.mu.Lock()
		tb.idx = nil
		tb.mu.Unlock()
		tb.prefixIndex(pos)
	}
}

func BenchmarkIndexBuild_MapRef(b *testing.B) {
	tb, pos, _ := benchIndexSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buildMapIndexRef(tb, pos)
	}
}
