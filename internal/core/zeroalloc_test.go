//go:build !race

// The zero-allocation assertion is meaningful only without the race
// detector: -race instrumentation itself allocates on synchronization
// paths, so the memo-warm guarantee is pinned in the plain suite (and
// by the make bench-compare allocation guard).
package core

import (
	"context"
	"math/big"
	"testing"

	"repro/internal/count"
	"repro/internal/parser"
	"repro/internal/structure"
	"repro/internal/workload"
)

// Steady-state serving: once every term's fingerprint is settled in the
// structures' sessions, CountBatchInto must not allocate at all — term
// counts come out of the session memo by pointer, products go through
// pooled temporaries, and results land in caller-owned big.Ints.
func TestCountBatchIntoZeroAllocMemoWarm(t *testing.T) {
	q := parser.MustQuery("q(x,y,z) := E(x,y) & E(y,z)")
	c, err := NewCounter(q, nil, count.EngineFPT)
	if err != nil {
		t.Fatal(err)
	}
	c.WithWorkers(1) // inline batch loop: no fan-out goroutines
	bs := make([]*structure.Structure, 4)
	out := make([]*big.Int, len(bs))
	for i := range bs {
		bs[i] = workload.RandomStructure(c.Compiled.Sig, 12, 0.3, int64(i))
		out[i] = new(big.Int)
	}
	ctx := context.Background()
	// Warm pass: materialize tables, settle every fingerprint, size the
	// destination big.Ints.
	if err := c.CountBatchInto(ctx, bs, out); err != nil {
		t.Fatal(err)
	}
	want := make([]*big.Int, len(out))
	for i, v := range out {
		want[i] = new(big.Int).Set(v)
	}
	// A background GC emptying the scratch pool mid-measurement can cost
	// a stray allocation; retry before declaring a real regression.
	var avg float64
	for attempt := 0; attempt < 3; attempt++ {
		avg = testing.AllocsPerRun(50, func() {
			if err := c.CountBatchInto(ctx, bs, out); err != nil {
				t.Fatal(err)
			}
		})
		if avg == 0 {
			break
		}
	}
	if avg != 0 {
		t.Fatalf("memo-warm CountBatchInto allocates %.2f objects per batch, want 0", avg)
	}
	for i := range out {
		if out[i].Cmp(want[i]) != 0 {
			t.Fatalf("structure %d: warm result %v != first pass %v", i, out[i], want[i])
		}
	}
}
