package core

import (
	"fmt"
	"math/big"
	"testing"

	"repro/internal/approx"
	"repro/internal/classify"
	"repro/internal/count"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/workload"
)

// namedQuery labels a query for test diagnostics.
type namedQuery struct {
	name string
	q    logic.Query
}

// TestRoutingMatchesClassify cross-checks the compile-time routing table
// against an independent classification of each interned term: the case
// the router stored must equal what classify.AnalyzePP reports under the
// same (wCore, wContract) bounds, and exactly the hard terms must carry
// an approximate plan.
func TestRoutingMatchesClassify(t *testing.T) {
	queries := []string{
		"p(x,y) := E(x,y)",
		"path(x,y,z) := E(x,y) & E(y,z)",
		"tri(x,y,z) := E(x,y) & E(y,z) & E(x,z)",
		"k4(w,x,y,z) := E(w,x) & E(w,y) & E(w,z) & E(x,y) & E(x,z) & E(y,z)",
		"mix(x,y) := E(x,y) | exists u. E(x,u) & E(u,y)",
		"ie(x,y,z) := E(x,y) & E(y,z) | E(x,y) & E(y,z) & E(x,z)",
	}
	battery := make([]namedQuery, 0, len(queries)+4)
	for _, src := range queries {
		battery = append(battery, namedQuery{src, parser.MustQuery(src)})
	}
	sig := workload.EdgeSig()
	for seed := int64(0); seed < 4; seed++ {
		q := workload.RandomEPQuery(sig, 2, 4, 2, 3, seed)
		battery = append(battery, namedQuery{fmt.Sprintf("random-ep-%d", seed), q})
	}
	for _, nq := range battery {
		src, q := nq.name, nq.q
		c, err := NewCounter(q, nil, count.EngineFPT)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		routes := c.Routes()
		if len(routes) != len(c.terms) {
			t.Fatalf("%s: %d routes for %d terms", src, len(routes), len(c.terms))
		}
		hardest := classify.CaseFPT
		for i := range c.terms {
			rep, err := classify.AnalyzePP(c.terms[i].formula)
			if err != nil {
				t.Fatalf("%s term %d: %v", src, i, err)
			}
			want := rep.CaseFor(DefaultRouteWCore, DefaultRouteWContract)
			if routes[i].Case != want {
				t.Errorf("%s term %d (%s): routed as %s, independent classification says %s",
					src, i, routes[i].FP, routes[i].Case, want)
			}
			if routes[i].Approx != want.Hard() {
				t.Errorf("%s term %d: approx plan = %v for case %s", src, i, routes[i].Approx, want)
			}
			if want > hardest {
				hardest = want
			}
		}
		if c.HardestCase() != hardest {
			t.Errorf("%s: HardestCase = %s, want %s", src, c.HardestCase(), hardest)
		}
	}
}

// TestFPTApproxBitIdentical checks that queries classified FPT take the
// exact path through CountApprox: the routed result must be bit-identical
// to Count, flagged Exact, with zero sampling budget spent.
func TestFPTApproxBitIdentical(t *testing.T) {
	queries := []string{
		"p(x,y) := E(x,y)",
		"path(x,y,z) := E(x,y) & E(y,z)",
		"star(x) := exists u. exists v. E(x,u) & E(x,v)",
		"disj(x,y) := E(x,y) | E(y,x)",
	}
	for _, src := range queries {
		q := parser.MustQuery(src)
		c, err := NewCounter(q, nil, count.EngineFPT)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if c.HardestCase() != classify.CaseFPT {
			t.Fatalf("%s: expected an FPT query, classified %s", src, c.HardestCase())
		}
		for seed := int64(0); seed < 4; seed++ {
			b := workload.GraphStructure(workload.ER(18, 0.3, seed))
			want, err := c.Count(b)
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.CountApprox(b, approx.Params{Seed: seed + 1})
			if err != nil {
				t.Fatal(err)
			}
			if res.Estimate.Cmp(want) != 0 {
				t.Fatalf("%s seed %d: approx route %v != exact %v", src, seed, res.Estimate, want)
			}
			if !res.Exact || res.RelErr != 0 || res.Confidence != 1 || res.Samples != 0 {
				t.Fatalf("%s seed %d: FPT route reported sampling telemetry: %+v", src, seed, res)
			}
		}
	}
}

// TestHardRoutingSamples checks the hard side of the dichotomy: a clique
// query routes to the sampling estimator, spends budget, and lands near
// the exact count; the exact Count path is untouched by routing.
func TestHardRoutingSamples(t *testing.T) {
	q := parser.MustQuery("tri(x,y,z) := E(x,y) & E(y,z) & E(x,z)")
	c, err := NewCounter(q, nil, count.EngineFPT)
	if err != nil {
		t.Fatal(err)
	}
	if !c.HardestCase().Hard() {
		t.Fatalf("triangle query classified %s, want a hard case", c.HardestCase())
	}
	b := workload.GraphStructure(workload.ER(40, 0.25, 3))
	want, err := c.Count(b)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.CountApprox(b, approx.Params{Epsilon: 0.1, Delta: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact || res.Samples == 0 || res.SampledTerms == 0 {
		t.Fatalf("hard query did not sample: %+v", res)
	}
	if !res.Converged {
		t.Fatalf("sampling did not converge within the default budget: %+v", res)
	}
	diff := new(big.Int).Sub(res.Estimate, want)
	diff.Abs(diff)
	bound := new(big.Float).SetInt(want)
	bound.Mul(bound, big.NewFloat(0.3)) // 3ε slack for the single trial
	if new(big.Float).SetInt(diff).Cmp(bound) > 0 {
		t.Fatalf("estimate %v too far from exact %v", res.Estimate, want)
	}
}

// TestClassificationMemoizedPerFingerprint checks that classification
// runs once per interned term fingerprint, not once per counter: a second
// counter over a renaming-equivalent query must be served entirely from
// the classification memo.
func TestClassificationMemoizedPerFingerprint(t *testing.T) {
	c1, err := NewCounter(parser.MustQuery("tri(x,y,z) := E(x,y) & E(y,z) & E(x,z)"), nil, count.EngineFPT)
	if err != nil {
		t.Fatal(err)
	}
	s1 := c1.Stats()
	if s1.ClassifyAnalyses+s1.ClassifyHits != len(c1.terms) {
		t.Fatalf("first counter: %d analyses + %d hits for %d terms",
			s1.ClassifyAnalyses, s1.ClassifyHits, len(c1.terms))
	}

	// Renaming-equivalent: same canonical fingerprint, different source.
	c2, err := NewCounter(parser.MustQuery("tri(a,b,c) := E(b,c) & E(a,b) & E(a,c)"), nil, count.EngineFPT)
	if err != nil {
		t.Fatal(err)
	}
	s2 := c2.Stats()
	if s2.ClassifyAnalyses != 0 {
		t.Fatalf("renaming-equivalent query re-ran %d classifications (want 0, all memo hits)", s2.ClassifyAnalyses)
	}
	if s2.ClassifyHits != len(c2.terms) {
		t.Fatalf("second counter: %d memo hits for %d terms", s2.ClassifyHits, len(c2.terms))
	}
	if c1.HardestCase() != c2.HardestCase() {
		t.Fatalf("equivalent queries routed differently: %s vs %s", c1.HardestCase(), c2.HardestCase())
	}
}

// TestWithRouteBoundsReroutes checks that re-routing against wider bounds
// flips a hard query back to the exact path without re-analyzing terms.
func TestWithRouteBoundsReroutes(t *testing.T) {
	q := parser.MustQuery("tri(x,y,z) := E(x,y) & E(y,z) & E(x,z)")
	c, err := NewCounter(q, nil, count.EngineFPT)
	if err != nil {
		t.Fatal(err)
	}
	if !c.HardestCase().Hard() {
		t.Fatalf("triangle query classified %s under (1,1)", c.HardestCase())
	}
	g0 := classify.Stats()
	c.WithRouteBounds(3, 3)
	if c.HardestCase() != classify.CaseFPT {
		t.Fatalf("under (3,3) the triangle should be FPT, got %s", c.HardestCase())
	}
	if g1 := classify.Stats(); g1 != g0 {
		t.Fatalf("re-routing re-ran classification: memo stats went %+v → %+v", g0, g1)
	}
	for _, r := range c.Routes() {
		if r.Approx {
			t.Fatalf("term %s still carries an approx plan after re-route to FPT", r.FP)
		}
	}
	b := workload.GraphStructure(workload.ER(20, 0.3, 1))
	want, err := c.Count(b)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.CountApprox(b, approx.Params{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate.Cmp(want) != 0 || !res.Exact {
		t.Fatalf("re-routed FPT count %v (exact=%v) != %v", res.Estimate, res.Exact, want)
	}
}
