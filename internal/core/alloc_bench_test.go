package core

import (
	"context"
	"math/big"
	"testing"

	"repro/internal/count"
	"repro/internal/parser"
	"repro/internal/structure"
	"repro/internal/workload"
)

// Memo-warm batch serving: after the warm pass every count comes out of
// session memos.  bench-compare's allocation guard pins this at 0
// allocs/op.
func BenchmarkCountBatchInto_MemoWarm(b *testing.B) {
	q := parser.MustQuery("q(x,y,z) := E(x,y) & E(y,z)")
	c, err := NewCounter(q, nil, count.EngineFPT)
	if err != nil {
		b.Fatal(err)
	}
	c.WithWorkers(1)
	bs := make([]*structure.Structure, 16)
	out := make([]*big.Int, len(bs))
	for i := range bs {
		bs[i] = workload.RandomStructure(c.Compiled.Sig, 12, 0.3, int64(i))
		out[i] = new(big.Int)
	}
	ctx := context.Background()
	if err := c.CountBatchInto(ctx, bs, out); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.CountBatchInto(ctx, bs, out); err != nil {
			b.Fatal(err)
		}
	}
}
