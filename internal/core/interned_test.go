package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/count"
	"repro/internal/parser"
	"repro/internal/workload"
)

// unionHeavySrc is an ep-query with 4 overlapping free disjuncts — the
// four rotations of a directed 2-path over the cyclic liberal variables
// (w,x,y,z).  All four are counting equivalent up to liberal renaming,
// so the 2⁴−1 = 15 raw inclusion–exclusion terms collapse hard.
const unionHeavySrc = `u(w,x,y,z) := E(x,y) & E(y,z)
	| E(y,z) & E(z,w)
	| E(z,w) & E(w,x)
	| E(w,x) & E(x,y)`

// Acceptance: on a union-heavy query with ≥ 4 overlapping disjuncts the
// interned pipeline compiles strictly fewer engine plans than raw
// inclusion–exclusion terms, and the Explain stats say so.
func TestInternedPlansFewerThanRawTerms(t *testing.T) {
	q := parser.MustQuery(unionHeavySrc)
	c, err := NewCounter(q, nil, count.EngineFPT)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Pool.Raw != 15 {
		t.Fatalf("RawTerms = %d, want 2^4-1 = 15", st.Pool.Raw)
	}
	if st.Pool.Unique >= st.Pool.Raw {
		t.Fatalf("interning did not dedupe: %d unique cores from %d raw terms", st.Pool.Unique, st.Pool.Raw)
	}
	if st.Plans >= st.Pool.Raw {
		t.Fatalf("compiled %d plans from %d raw terms: want strictly fewer", st.Plans, st.Pool.Raw)
	}
	if st.Plans != len(c.terms) || st.Plans != len(c.Compiled.Minus) {
		t.Fatalf("Plans = %d, terms = %d, Minus = %d: must agree", st.Plans, len(c.terms), len(c.Compiled.Minus))
	}
	// The numbers surface through Explain.
	s := c.Explain()
	for _, want := range []string{
		fmt.Sprintf("term pool: %d raw IE terms → %d unique cores", st.Pool.Raw, st.Pool.Unique),
		fmt.Sprintf("plans: %d", st.Plans),
		"count cache:",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("Explain missing %q:\n%s", want, s)
		}
	}
	// And the deduped pipeline still counts correctly.
	for seed := int64(0); seed < 4; seed++ {
		b := workload.RandomStructure(c.Compiled.Sig, 4, 0.4, seed)
		want, err := c.CountDirect(b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Count(b)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("seed %d: interned %v != direct %v", seed, got, want)
		}
	}
}

// The session count memo fires on repeated counts of the same structure
// and the hit telemetry reaches Stats/Explain.
func TestCountCacheHitsOnRepeatedCounts(t *testing.T) {
	q := parser.MustQuery(unionHeavySrc)
	c, err := NewCounter(q, nil, count.EngineFPT)
	if err != nil {
		t.Fatal(err)
	}
	b := workload.RandomStructure(c.Compiled.Sig, 5, 0.3, 9)
	first, err := c.Count(b)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.CountCacheHits != 0 {
		t.Fatalf("first count should be all misses, got %d hits", st.CountCacheHits)
	}
	misses := st.CountCacheMisses
	if misses == 0 {
		t.Fatal("fingerprinted terms should record misses on the first count")
	}
	second, err := c.Count(b)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cmp(second) != 0 {
		t.Fatalf("repeated count changed: %v vs %v", first, second)
	}
	st = c.Stats()
	if st.CountCacheHits != misses {
		t.Fatalf("second count should hit every memoized term: %d hits, want %d", st.CountCacheHits, misses)
	}
	if st.CountCacheMisses != misses {
		t.Fatalf("second count recorded new misses: %d, want %d", st.CountCacheMisses, misses)
	}
}

// Explain's static report is memoized: repeated calls return identical
// text (modulo the live stats block) without rebuilding.
func TestExplainMemoized(t *testing.T) {
	q := parser.MustQuery(unionHeavySrc)
	c, err := NewCounter(q, nil, count.EngineFPT)
	if err != nil {
		t.Fatal(err)
	}
	a := c.Explain()
	if c.explainStatic == "" {
		t.Fatal("static report not memoized")
	}
	if !strings.HasPrefix(a, c.explainStatic) {
		t.Fatal("Explain must start with the memoized static report")
	}
	b := c.Explain()
	if !strings.HasPrefix(b, c.explainStatic) {
		t.Fatal("second Explain lost the static report")
	}
}

// Counting-equivalent queries compiled as separate Counters share plans
// through the fingerprint-keyed cache.
func TestFingerprintPlanSharingAcrossCounters(t *testing.T) {
	q1 := parser.MustQuery("p(x,y) := exists u. E(x,u) & E(u,y)")
	q2 := parser.MustQuery("p(a,b) := exists m. E(a,m) & E(m,b)")
	c1, err := NewCounter(q1, nil, count.EngineFPT)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewCounter(q2, nil, count.EngineFPT)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Stats().Plans != 1 || c2.Stats().Plans != 1 {
		t.Fatalf("single-disjunct queries should have 1 plan each")
	}
	if c2.Stats().SharedPlans != 1 {
		t.Fatalf("c2 should reuse c1's plan via the fingerprint cache, SharedPlans = %d", c2.Stats().SharedPlans)
	}
	if c1.terms[0].plan != c2.terms[0].plan {
		t.Fatal("counters should hold the identical plan object")
	}
}

// Differential property test on the term-dedup-heavy shape: randomized
// ep-queries assembled from overlapping union disjuncts, interned
// pipeline vs brute-force enumeration, serial and parallel.
func TestInternedPipelineMatchesDirectRandomUnions(t *testing.T) {
	templates := []string{
		"E(x,y)",
		"E(y,x)",
		"exists u. E(x,u) & E(u,y)",
		"exists u. E(y,u) & E(u,x)",
		"E(x,y) & E(y,x)",
		"E(x,x)",
		"exists u, v. E(u,v) & E(v,u)", // sentence disjunct
		"exists u. E(x,u)",
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 12; trial++ {
		k := 2 + rng.Intn(4) // 2..5 disjuncts, duplicates allowed
		var parts []string
		for i := 0; i < k; i++ {
			parts = append(parts, templates[rng.Intn(len(templates))])
		}
		src := "q(x,y) := " + strings.Join(parts, " | ")
		q := parser.MustQuery(src)
		c, err := NewCounter(q, nil, count.EngineFPT)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		for seed := int64(0); seed < 3; seed++ {
			b := workload.RandomStructure(c.Compiled.Sig, 4, 0.35, int64(trial)*7+seed)
			want, err := c.CountDirect(b)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.Count(b)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(want) != 0 {
				t.Fatalf("%s seed %d: interned %v != direct %v", src, seed, got, want)
			}
			par, err := c.CountParallel(b)
			if err != nil {
				t.Fatal(err)
			}
			if par.Cmp(want) != 0 {
				t.Fatalf("%s seed %d: parallel %v != direct %v", src, seed, par, want)
			}
		}
	}
}
