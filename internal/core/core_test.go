package core

import (
	"math/big"
	"strings"
	"testing"

	"repro/internal/classify"
	"repro/internal/count"
	"repro/internal/parser"
	"repro/internal/structure"
	"repro/internal/workload"
)

func TestCounterMatchesDirect(t *testing.T) {
	queries := []string{
		"phi(w,x,y,z) := E(x,y) & (E(w,x) | E(y,z) & E(z,z))",
		"q(x,y) := E(x,y) | exists u. E(u,u)",
		"q(s,t) := exists u. E(s,u) & E(u,t)",
	}
	for _, src := range queries {
		q := parser.MustQuery(src)
		c, err := NewCounter(q, nil, count.EngineFPT)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 5; seed++ {
			b := workload.RandomStructure(c.Compiled.Sig, 3, 0.4, seed)
			want, err := c.CountDirect(b)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.Count(b)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(want) != 0 {
				t.Fatalf("%s seed %d: %v != %v", src, seed, got, want)
			}
		}
	}
}

func TestCounterSignatureMismatch(t *testing.T) {
	q := parser.MustQuery("q(x) := F(x)")
	c, err := NewCounter(q, nil, count.EngineFPT)
	if err != nil {
		t.Fatal(err)
	}
	b := workload.RandomStructure(workload.EdgeSig(), 3, 0.5, 1)
	if _, err := c.Count(b); err == nil {
		t.Fatal("signature mismatch should error")
	}
}

func TestCountWithAllEngines(t *testing.T) {
	q := parser.MustQuery("q(x,y) := E(x,y) | E(y,x)")
	c, err := NewCounter(q, nil, count.EngineFPT)
	if err != nil {
		t.Fatal(err)
	}
	b := workload.RandomStructure(workload.EdgeSig(), 4, 0.4, 3)
	v, err := c.CountWithAllEngines(b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := c.CountDirect(b)
	if v.Cmp(want) != 0 {
		t.Fatalf("all-engines count %v != direct %v", v, want)
	}
}

func TestCounterClassify(t *testing.T) {
	c, err := NewCounter(workload.PathQuery(3), nil, count.EngineFPT)
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.Classify(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v.Case != classify.CaseFPT {
		t.Fatalf("path query should be FPT, got %v", v.Case)
	}
}

func TestCounterOracleRoundTrip(t *testing.T) {
	q := parser.MustQuery("q(x,y) := E(x,y) | E(y,x)")
	c, err := NewCounter(q, nil, count.EngineFPT)
	if err != nil {
		t.Fatal(err)
	}
	b := workload.RandomStructure(workload.EdgeSig(), 3, 0.5, 5)
	for _, p := range c.Compiled.Plus {
		direct, err := c.CountPP(p, b)
		if err != nil {
			t.Fatal(err)
		}
		viaOracle, err := c.CountPPViaOracle(p, b)
		if err != nil {
			t.Fatal(err)
		}
		if direct.Cmp(viaOracle) != 0 {
			t.Fatalf("oracle path %v != direct %v", viaOracle, direct)
		}
	}
}

func TestExplainMentionsPipeline(t *testing.T) {
	q := parser.MustQuery(`th(w,x,y,z) := E(x,y) & E(y,z)
		| E(z,w) & E(w,x)
		| E(w,x) & E(x,y)
		| exists a,b,c,d. E(a,b) & E(b,c) & E(c,d)`)
	c, err := NewCounter(q, nil, count.EngineFPT)
	if err != nil {
		t.Fatal(err)
	}
	s := c.Explain()
	for _, want := range []string{"normalized disjuncts: 4", "φ*af", "φ⁺ size: 2", "classification"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Explain missing %q:\n%s", want, s)
		}
	}
}

func TestSentenceShortCircuit(t *testing.T) {
	// When a sentence disjunct holds, the count is |B|^|lib| regardless of
	// the free disjuncts.
	q := parser.MustQuery("q(x,y) := E(x,y) & E(y,x) | exists u. E(u,u)")
	c, err := NewCounter(q, nil, count.EngineFPT)
	if err != nil {
		t.Fatal(err)
	}
	b := parser.MustStructure("E(1,1). E(1,2). E(2,3).", workload.EdgeSig())
	got, err := c.Count(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewInt(9)) != 0 {
		t.Fatalf("count = %v, want 9 = |B|²", got)
	}
}

func TestCountParallelMatchesSerial(t *testing.T) {
	q := parser.MustQuery("q(w,x,y,z) := E(x,y) & E(y,z) | E(z,w) & E(w,x) | E(w,x) & E(x,y)")
	c, err := NewCounter(q, nil, count.EngineFPT)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 6; seed++ {
		b := workload.RandomStructure(workload.EdgeSig(), 4, 0.4, seed)
		serial, err := c.Count(b)
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := c.CountParallel(b)
		if err != nil {
			t.Fatal(err)
		}
		if serial.Cmp(parallel) != 0 {
			t.Fatalf("seed %d: serial %v != parallel %v", seed, serial, parallel)
		}
	}
	// Sentence short-circuit in the parallel path.
	q2 := parser.MustQuery("q(x) := E(x,x) & E(x,x) | exists u, v. E(u,v) & E(v,u)")
	c2, err := NewCounter(q2, nil, count.EngineFPT)
	if err != nil {
		t.Fatal(err)
	}
	b := parser.MustStructure("E(1,2). E(2,1). E(2,3).", workload.EdgeSig())
	p2, err := c2.CountParallel(b)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c2.CountDirect(b)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Cmp(want) != 0 {
		t.Fatalf("parallel sentence path %v != direct %v", p2, want)
	}
}

func TestAnswersThroughCounter(t *testing.T) {
	q := parser.MustQuery("q(x,y) := E(x,y) | E(y,x)")
	c, err := NewCounter(q, nil, count.EngineFPT)
	if err != nil {
		t.Fatal(err)
	}
	b := parser.MustStructure("E(a,b).", workload.EdgeSig())
	var got []count.Answer
	n, err := c.Answers(b, 0, func(a count.Answer) bool {
		got = append(got, append(count.Answer(nil), a...))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || len(got) != 2 {
		t.Fatalf("answers = %d (%v), want 2", n, got)
	}
	count.SortAnswers(got)
	if got[0][0] != "a" || got[0][1] != "b" || got[1][0] != "b" || got[1][1] != "a" {
		t.Fatalf("answers = %v", got)
	}
}

// CountBatch must agree with per-structure Count for every engine, and
// report errors (here: a signature mismatch inside the batch).
func TestCountBatchMatchesCount(t *testing.T) {
	q := parser.MustQuery("q(w,x,y,z) := E(x,y) & E(y,z) | E(z,w) & E(w,x) | E(w,x) & E(x,y)")
	for _, eng := range []count.PPEngine{count.EngineFPT, count.EngineProjection} {
		c, err := NewCounter(q, nil, eng)
		if err != nil {
			t.Fatal(err)
		}
		var batch []*structure.Structure
		var want []*big.Int
		for seed := int64(0); seed < 12; seed++ {
			b := workload.RandomStructure(workload.EdgeSig(), 4, 0.35, seed)
			batch = append(batch, b)
			v, err := c.Count(b)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, v)
		}
		got, err := c.CountBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("engine %v: batch returned %d results, want %d", eng, len(got), len(want))
		}
		for i := range want {
			if got[i].Cmp(want[i]) != 0 {
				t.Fatalf("engine %v: batch[%d] = %v, want %v", eng, i, got[i], want[i])
			}
		}
	}
	// A bad structure anywhere in the batch surfaces as an error.
	c, err := NewCounter(q, nil, count.EngineFPT)
	if err != nil {
		t.Fatal(err)
	}
	other := structure.MustSignature(structure.RelSym{Name: "F", Arity: 1})
	bad := structure.New(other)
	bad.EnsureElem("a")
	batch := []*structure.Structure{
		workload.RandomStructure(workload.EdgeSig(), 3, 0.4, 1),
		bad,
	}
	if _, err := c.CountBatch(batch); err == nil {
		t.Fatal("batch with mismatched signature must error")
	}
}
