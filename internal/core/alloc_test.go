package core

import (
	"context"
	"math/big"
	"testing"

	"repro/internal/count"
	"repro/internal/parser"
	"repro/internal/structure"
	"repro/internal/workload"
)

// CountBatchInto must agree with CountBatch on every path (inline and
// fanned out) and validate its output slice.
func TestCountBatchIntoMatchesCountBatch(t *testing.T) {
	q := parser.MustQuery("q(x,y) := E(x,y) | E(y,x)")
	c, err := NewCounter(q, nil, count.EngineFPT)
	if err != nil {
		t.Fatal(err)
	}
	bs := make([]*structure.Structure, 6)
	for i := range bs {
		bs[i] = workload.RandomStructure(c.Compiled.Sig, 9, 0.4, 100+int64(i))
	}
	ref, err := c.CountBatch(bs)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		c.WithWorkers(workers)
		out := make([]*big.Int, len(bs))
		for i := range out {
			out[i] = new(big.Int)
		}
		if err := c.CountBatchInto(context.Background(), bs, out); err != nil {
			t.Fatal(err)
		}
		for i := range out {
			if out[i].Cmp(ref[i]) != 0 {
				t.Fatalf("workers=%d structure %d: %v, want %v", workers, i, out[i], ref[i])
			}
		}
	}
	if err := c.CountBatchInto(context.Background(), bs, make([]*big.Int, 2)); err == nil {
		t.Fatal("mismatched out length accepted")
	}
}
