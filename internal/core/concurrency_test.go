package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/count"
	"repro/internal/parser"
	"repro/internal/structure"
	"repro/internal/workload"
)

// TestStatsConcurrentWithCounting is the -race regression test for the
// serving pattern: one goroutine batch-counts, one reads Stats/Explain,
// one retunes the worker budget — the exact interleaving a /stats
// endpoint produces against in-flight /count handlers.  Before workers
// became atomic, WithWorkers racing CountBatch's budget read (and the
// Stats snapshot) was a data race.
func TestStatsConcurrentWithCounting(t *testing.T) {
	q := parser.MustQuery("phi(x,y) := E(x,y) | E(y,x)")
	b := parser.MustStructure("E(a,b). E(b,c). E(c,a). E(a,c).", nil)
	c, err := NewCounter(q, b.Signature(), count.EngineFPT)
	if err != nil {
		t.Fatal(err)
	}
	batch := []*structure.Structure{b, b, b, b}
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if _, err := c.CountBatch(batch); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			st := c.Stats()
			if st.Plans != len(c.terms) {
				t.Errorf("Stats snapshot lost plans: %d != %d", st.Plans, len(c.terms))
				return
			}
			_ = st.String()
			_ = c.Explain()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			c.WithWorkers(1 + i%4)
		}
	}()
	wg.Wait()
}

// TestCountCtxDeadline: an expired per-request deadline aborts the count
// with context.DeadlineExceeded, and the counter still answers the next
// un-cancelled request correctly (the per-session count memo must not be
// poisoned by the cancelled term).
func TestCountCtxDeadline(t *testing.T) {
	q := workload.CliqueQuery(3) // free triangle: a dense three-way join
	b := workload.RandomStructure(workload.EdgeSig(), 250, 0.5, 17)
	c, err := NewCounter(q, b.Signature(), count.EngineFPT)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, err := c.CountCtx(ctx, b); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("CountCtx err = %v, want context.DeadlineExceeded", err)
	}

	got, err := c.CountCtx(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.Count(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(want) != 0 {
		t.Fatalf("post-cancel count %v != %v", got, want)
	}
}

// TestCountBatchCtxCancel: cancelling a batch stops it with the
// context's error.
func TestCountBatchCtxCancel(t *testing.T) {
	q := workload.CliqueQuery(3)
	b := workload.RandomStructure(workload.EdgeSig(), 200, 0.5, 19)
	c, err := NewCounter(q, b.Signature(), count.EngineFPT)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]*structure.Structure, 8)
	for i := range batch {
		batch[i] = workload.RandomStructure(workload.EdgeSig(), 200, 0.5, int64(20+i))
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, err := c.CountBatchCtx(ctx, batch); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("CountBatchCtx err = %v, want context.DeadlineExceeded", err)
	}
	// The same batch completes without a deadline, and agrees with
	// per-structure counting.
	vs, err := c.CountBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	for i, bi := range batch {
		want, err := c.Count(bi)
		if err != nil {
			t.Fatal(err)
		}
		if vs[i].Cmp(want) != 0 {
			t.Fatalf("batch[%d] = %v, want %v", i, vs[i], want)
		}
	}
}
