// Package core ties the paper's machinery into the production counting
// pipeline — the primary contribution of Chen & Mengel (PODS 2016) made
// executable.  A Counter compiles an ep-query once through the
// Theorem 3.1 front-end (normalization, inclusion–exclusion with
// cancellation, sentence-disjunct filtering) and then counts answers on
// any number of structures via the pp-formulas of φ⁺, each counted with
// the Theorem 2.11 FPT algorithm (or a chosen fallback engine).  It also
// exposes the trichotomy classification of the compiled query
// (Theorem 3.2).
package core

import (
	"fmt"
	"math/big"
	"strings"

	"repro/internal/classify"
	"repro/internal/count"
	"repro/internal/engine"
	"repro/internal/eptrans"
	"repro/internal/logic"
	"repro/internal/pp"
	"repro/internal/structure"
)

// Counter is a compiled ep-query ready for repeated counting.
type Counter struct {
	Compiled *eptrans.Compiled
	Engine   count.PPEngine

	// plans holds one compiled engine.Plan per φ⁻af term (keyed by the
	// term's structure identity): the formula-dependent work — cores,
	// ∃-components, tree decompositions, constraint schemes — is paid
	// once at construction, for every engine.  Structure-dependent work
	// (constraint tables) lives in per-structure engine.Sessions shared
	// across terms, repeated counts, and batches.
	plans map[*structure.Structure]engine.Plan

	// workers caps the counter's total parallelism — the executor's
	// intra-plan workers and the CountParallel/CountBatch fan-out pools
	// share the budget.  0 means the process default (EPCQ_WORKERS, else
	// GOMAXPROCS); see WithWorkers.
	workers int
}

// WithWorkers sets the counter's worker budget (n ≤ 0 restores the
// process default: EPCQ_WORKERS, else GOMAXPROCS) and returns the
// counter for chaining.  The budget is shared: CountParallel and
// CountBatch split it between their fan-out pool and the per-term
// executors, so total concurrency stays at most n.  Counts are
// bit-identical for every budget.
func (c *Counter) WithWorkers(n int) *Counter {
	if n < 0 {
		n = 0
	}
	c.workers = n
	return c
}

// effWorkers resolves the counter's worker budget.
func (c *Counter) effWorkers() int { return engine.EffectiveWorkers(c.workers) }

// splitWorkers divides the counter's budget between an outer fan-out of
// n tasks and the executors inside each: outer gets min(n, budget)
// slots, inner gets the leftover share (≥ 1).
func (c *Counter) splitWorkers(n int) (outer, inner int) {
	w := c.effWorkers()
	outer = w
	if outer > n {
		outer = n
	}
	if outer < 1 {
		outer = 1
	}
	inner = w / outer
	if inner < 1 {
		inner = 1
	}
	return outer, inner
}

// termEngine maps the configured engine to the engine used for the φ⁻af
// terms: terms come out of the inclusion–exclusion merge already cored,
// so the FPT family skips the core step.
func termEngine(e count.PPEngine) engine.Name {
	switch e {
	case count.EngineFPT, count.EngineAuto, count.EngineFPTNoCore:
		return engine.FPTNoCore
	default:
		return e
	}
}

// NewCounter compiles the query over the signature.  Passing a nil
// signature infers it from the query's atoms.
func NewCounter(q logic.Query, sig *structure.Signature, eng count.PPEngine) (*Counter, error) {
	if sig == nil {
		var err error
		sig, err = eptrans.InferStructSignature(q)
		if err != nil {
			return nil, err
		}
	}
	c, err := eptrans.Compile(q, sig)
	if err != nil {
		return nil, err
	}
	counter := &Counter{Compiled: c, Engine: eng}
	counter.plans = make(map[*structure.Structure]engine.Plan, len(c.Minus))
	for _, term := range c.Minus {
		plan, err := engine.Compile(term.Formula, termEngine(eng))
		if err != nil {
			return nil, err
		}
		counter.plans[term.Formula.A] = plan
	}
	return counter, nil
}

// Count returns |φ(B)|: the number of assignments of the liberal
// variables satisfying the query on b.  This is the paper's pipeline:
// sentence disjuncts short-circuit to |B|^|lib|; otherwise the signed sum
// over φ⁻af is evaluated with the configured pp engine.
func (c *Counter) Count(b *structure.Structure) (*big.Int, error) {
	return c.countWith(b, c.workers)
}

// CountParallel is Count with the φ⁻af terms evaluated concurrently on a
// bounded worker pool.  The counter's worker budget (WithWorkers, else
// EPCQ_WORKERS, else GOMAXPROCS) is split between the term fan-out and
// the executor inside each term.  Structures are safe for concurrent
// read-only use, the shared engine.Session is concurrency-safe, and the
// signed sum is order-independent, so the result is identical to Count.
// Worth it when φ⁻af has several expensive terms.
func (c *Counter) CountParallel(b *structure.Structure) (*big.Int, error) {
	if !c.Compiled.Sig.Equal(b.Signature()) {
		return nil, fmt.Errorf("core: query signature %v differs from structure signature %v",
			c.Compiled.Sig, b.Signature())
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	sess := engine.SessionFor(b)
	for _, th := range c.Compiled.Sentences {
		if sess.SentenceHolds(th.A) {
			return c.Compiled.MaxCount(b), nil
		}
	}
	outer, inner := c.splitWorkers(len(c.Compiled.Minus))
	results := make([]*big.Int, len(c.Compiled.Minus))
	err := engine.RunBounded(len(c.Compiled.Minus), outer, func(i int) error {
		v, err := c.termCount(c.Compiled.Minus[i].Formula, sess, inner)
		results[i] = v
		return err
	})
	if err != nil {
		return nil, err
	}
	total := new(big.Int)
	for i, term := range c.Compiled.Minus {
		total.Add(total, new(big.Int).Mul(term.Coeff, results[i]))
	}
	return total, nil
}

// CountBatch counts the query on every structure of the batch, spreading
// the structures over a bounded worker pool (the counter's worker
// budget, split between the batch fan-out and the executor inside each
// worker: large batches run one structure per worker with serial
// executors, small batches give each structure a share of the cores).
// Result i corresponds to bs[i].
func (c *Counter) CountBatch(bs []*structure.Structure) ([]*big.Int, error) {
	outer, inner := c.splitWorkers(len(bs))
	out := make([]*big.Int, len(bs))
	err := engine.RunBounded(len(bs), outer, func(i int) error {
		v, err := c.countWith(bs[i], inner)
		out[i] = v
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// countWith is Count with an explicit executor worker budget per term.
func (c *Counter) countWith(b *structure.Structure, workers int) (*big.Int, error) {
	if !c.Compiled.Sig.Equal(b.Signature()) {
		return nil, fmt.Errorf("core: query signature %v differs from structure signature %v",
			c.Compiled.Sig, b.Signature())
	}
	return eptrans.CountEPViaPP(c.Compiled, b, c.ppCounterWith(workers))
}

// termCount evaluates one φ⁻af term inside a session, through its
// precompiled plan, with the given executor worker budget.
func (c *Counter) termCount(p pp.PP, sess *engine.Session, workers int) (*big.Int, error) {
	if plan, ok := c.plans[p.A]; ok {
		return engine.CountInWorkers(plan, sess, workers)
	}
	pl, err := engine.Compile(p, termEngine(c.Engine))
	if err != nil {
		return nil, err
	}
	return engine.CountInWorkers(pl, sess, workers)
}

func (c *Counter) ppCounter() eptrans.PPCounter { return c.ppCounterWith(c.workers) }

func (c *Counter) ppCounterWith(workers int) eptrans.PPCounter {
	return func(p pp.PP, b *structure.Structure) (*big.Int, error) {
		if plan, ok := c.plans[p.A]; ok {
			return engine.CountInWorkers(plan, engine.SessionFor(b), workers)
		}
		return count.PP(p, b, c.Engine)
	}
}

// Release drops the cached engine session of b (if any), freeing its
// materialized constraint tables ahead of LRU eviction.  Long-lived
// processes that are done with a structure can call this instead of
// waiting for the session registry's cap-pressure eviction.
func (c *Counter) Release(b *structure.Structure) { engine.ReleaseSession(b) }

// CountDirect evaluates the query by brute-force enumeration of liberal
// assignments: the reference semantics (exponential; for validation).
func (c *Counter) CountDirect(b *structure.Structure) (*big.Int, error) {
	return count.EPDirect(c.Compiled.Query, b)
}

// CountPP counts one member of φ⁺ directly with the configured engine.
func (c *Counter) CountPP(p pp.PP, b *structure.Structure) (*big.Int, error) {
	return count.PP(p, b, c.Engine)
}

// CountPPViaOracle counts a member of φ⁺ using only oracle access to the
// full ep-query — the backward slice reduction of Theorem 3.1, exposed so
// applications (and the E8 experiment) can exercise the interreduction.
func (c *Counter) CountPPViaOracle(p pp.PP, b *structure.Structure) (*big.Int, error) {
	oracle := func(y *structure.Structure) (*big.Int, error) {
		return eptrans.CountEPViaPP(c.Compiled, y, c.ppCounter())
	}
	return eptrans.CountPPViaEP(c.Compiled, p, b, oracle)
}

// Answers enumerates the answer set φ(B) (deduplicated assignments of
// the liberal variables, as element names aligned with the query head).
// fn returning false stops early; limit ≤ 0 means unlimited.  Returns the
// number of answers delivered.
func (c *Counter) Answers(b *structure.Structure, limit int, fn func(count.Answer) bool) (int, error) {
	if !c.Compiled.Sig.Equal(b.Signature()) {
		return 0, fmt.Errorf("core: query signature %v differs from structure signature %v",
			c.Compiled.Sig, b.Signature())
	}
	return count.EnumerateAnswers(c.Compiled.Sig, c.Compiled.Query.Lib, c.Compiled.Disjuncts, b, limit, fn)
}

// Classify returns the trichotomy verdict of the compiled query's φ⁺
// relative to the supplied width bounds.
func (c *Counter) Classify(wCore, wContract int) (classify.Verdict, error) {
	return classify.ClassifyPPSet(c.Compiled.Plus, wCore, wContract)
}

// Explain renders a human-readable account of the compiled pipeline:
// the normalized disjuncts, φ*af with coefficients, φ⁻af and φ⁺, and the
// per-formula structural parameters.
func (c *Counter) Explain() string {
	var b strings.Builder
	cp := c.Compiled
	fmt.Fprintf(&b, "query: %s\n", cp.Query)
	fmt.Fprintf(&b, "signature: %s\n", cp.Sig)
	fmt.Fprintf(&b, "normalized disjuncts: %d (%d free, %d sentence)\n",
		len(cp.Disjuncts), len(cp.Free), len(cp.Sentences))
	for i, d := range cp.Disjuncts {
		kind := "free"
		if d.IsSentence() {
			kind = "sentence"
		}
		fmt.Fprintf(&b, "  ψ%d (%s): %s\n", i+1, kind, d)
	}
	fmt.Fprintf(&b, "φ*af terms (after cancellation): %d\n", len(cp.Star))
	for _, t := range cp.Star {
		fmt.Fprintf(&b, "  %+d × %s\n", t.Coeff, t.Formula)
	}
	fmt.Fprintf(&b, "φ⁻af terms (surviving sentence-entailment filter): %d\n", len(cp.Minus))
	fmt.Fprintf(&b, "φ⁺ size: %d\n", len(cp.Plus))
	if v, err := c.Classify(1, 1); err == nil {
		fmt.Fprintf(&b, "classification vs bounds (1,1): %s\n", v)
		for i, r := range v.Reports {
			fmt.Fprintf(&b, "  φ⁺[%d]: core tw %d, contract tw %d, ∃-components %d (max interface %d)\n",
				i, r.CoreTreewidth, r.ContractTreewidth, r.NumExistsComponents, r.MaxInterface)
		}
	}
	return b.String()
}

// CountWithAllEngines runs the projection and FPT engines and checks they
// agree; returns the common count.  Used by validation tooling and tests.
func (c *Counter) CountWithAllEngines(b *structure.Structure) (*big.Int, error) {
	engines := []count.PPEngine{count.EngineProjection, count.EngineFPT}
	var result *big.Int
	for _, e := range engines {
		engine := e
		v, err := eptrans.CountEPViaPP(c.Compiled, b, func(p pp.PP, s *structure.Structure) (*big.Int, error) {
			return count.PP(p, s, engine)
		})
		if err != nil {
			return nil, fmt.Errorf("core: engine %v: %w", e, err)
		}
		if result == nil {
			result = v
		} else if result.Cmp(v) != 0 {
			return nil, fmt.Errorf("core: engines disagree: %v vs %v", result, v)
		}
	}
	return result, nil
}
