package core

import (
	"context"
	"fmt"
	"math/big"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/approx"
	"repro/internal/classify"
	"repro/internal/count"
	"repro/internal/engine"
	"repro/internal/eptrans"
	"repro/internal/logic"
	"repro/internal/pp"
	"repro/internal/structure"
	"repro/internal/term"
)

// Counter is a compiled ep-query ready for repeated counting.
type Counter struct {
	Compiled *eptrans.Compiled
	Engine   count.PPEngine

	// terms holds the unique φ⁻af counting classes, each carrying its
	// canonical fingerprint, merged coefficient, and compiled
	// engine.Plan: the formula-dependent work — cores, ∃-components,
	// tree decompositions, constraint schemes — is paid once at
	// construction, and shared across Counters through the fingerprint-
	// keyed plan cache.  Structure-dependent work (constraint tables,
	// per-fingerprint counts) lives in per-structure engine.Sessions
	// shared across terms, repeated counts, and batches.
	terms []compiledTerm
	// termIdx maps a φ⁻af term's structure identity to its terms index —
	// the lookup the oracle-reduction paths use.
	termIdx map[*structure.Structure]int
	// sharedPlans counts terms whose plan was already in the
	// fingerprint-keyed cache at construction.
	sharedPlans int

	// Count-cache telemetry: per-fingerprint session memo hits/misses,
	// surfaced through Stats/Explain.
	countHits   atomic.Uint64
	countMisses atomic.Uint64

	// Explain's static report (normalized disjuncts, φ*, classification)
	// is classification-heavy; it is built once and reused.
	explainOnce   sync.Once
	explainStatic string

	// workers caps the counter's total parallelism — the executor's
	// intra-plan workers and the CountParallel/CountBatch fan-out pools
	// share the budget.  0 means the process default (EPCQ_WORKERS, else
	// GOMAXPROCS); see WithWorkers.  Atomic so that long-lived serving
	// processes may retune the budget while counts are in flight (the
	// race-free snapshot Stats relies on).
	workers atomic.Int32

	// Routing state (see routing.go): the width bounds terms were
	// classified against, the worst case among them, the construction-
	// time classification-memo outcomes, and the number of approximate
	// term evaluations performed so far.
	routeWCore, routeWContract int
	hardest                    classify.Case
	classifyAnalyses           int
	classifyHits               int
	approxCounts               atomic.Uint64
}

// compiledTerm is one unique φ⁻af counting class, ready to execute.
type compiledTerm struct {
	formula pp.PP
	fp      string // canonical fingerprint ("" = labeling budget exceeded)
	coeff   *big.Int
	plan    engine.Plan

	// Routing state (see routing.go): the memoized classification
	// Report, the trichotomy case under the counter's route bounds, and
	// — for hard terms — the compiled approximate plan.
	report   classify.Report
	analyzed bool
	caseOf   classify.Case
	est      *approx.Estimator
}

// WithWorkers sets the counter's worker budget (n ≤ 0 restores the
// process default: EPCQ_WORKERS, else GOMAXPROCS) and returns the
// counter for chaining.  The budget is shared: CountParallel and
// CountBatch split it between their fan-out pool and the per-term
// executors, so total concurrency stays at most n.  Counts are
// bit-identical for every budget.  Safe to call concurrently with
// in-flight counting (in-flight calls keep the budget they started
// with; subsequent calls see the new one).
func (c *Counter) WithWorkers(n int) *Counter {
	if n < 0 {
		n = 0
	}
	c.workers.Store(int32(n))
	return c
}

// curWorkers returns the raw configured budget (0 = process default).
func (c *Counter) curWorkers() int { return int(c.workers.Load()) }

// effWorkers resolves the counter's worker budget.
func (c *Counter) effWorkers() int { return engine.EffectiveWorkers(c.curWorkers()) }

// splitWorkers divides the counter's budget between an outer fan-out of
// n tasks and the executors inside each: outer gets min(n, budget)
// slots, inner gets the leftover share (≥ 1).
func (c *Counter) splitWorkers(n int) (outer, inner int) {
	w := c.effWorkers()
	outer = w
	if outer > n {
		outer = n
	}
	if outer < 1 {
		outer = 1
	}
	inner = w / outer
	if inner < 1 {
		inner = 1
	}
	return outer, inner
}

// NewCounter compiles the query over the signature.  Passing a nil
// signature infers it from the query's atoms.  Each unique φ⁻af counting
// class gets exactly one engine plan, resolved through the fingerprint-
// keyed plan cache (counting-equivalent terms of other Counters share
// it).
func NewCounter(q logic.Query, sig *structure.Signature, eng count.PPEngine) (*Counter, error) {
	if sig == nil {
		var err error
		sig, err = eptrans.InferStructSignature(q)
		if err != nil {
			return nil, err
		}
	}
	c, err := eptrans.Compile(q, sig)
	if err != nil {
		return nil, err
	}
	counter := &Counter{Compiled: c, Engine: eng}
	counter.terms = make([]compiledTerm, 0, len(c.Minus))
	counter.termIdx = make(map[*structure.Structure]int, len(c.Minus))
	for _, t := range c.Minus {
		plan, hit, err := engine.CompileKeyed(t.Formula, t.FP, count.TermEngine(eng))
		if err != nil {
			return nil, err
		}
		if hit {
			counter.sharedPlans++
		}
		counter.termIdx[t.Formula.A] = len(counter.terms)
		counter.terms = append(counter.terms, compiledTerm{
			formula: t.Formula,
			fp:      t.FP,
			coeff:   t.Coeff,
			plan:    plan,
		})
	}
	counter.routeTerms(DefaultRouteWCore, DefaultRouteWContract)
	return counter, nil
}

// Count returns |φ(B)|: the number of assignments of the liberal
// variables satisfying the query on b.  This is the paper's pipeline:
// sentence disjuncts short-circuit to |B|^|lib|; otherwise the signed sum
// over φ⁻af is evaluated with the configured pp engine.
func (c *Counter) Count(b *structure.Structure) (*big.Int, error) {
	return c.countWith(context.Background(), b, c.curWorkers())
}

// CountCtx is Count under a context: the executor polls ctx while
// counting and aborts with its error (typically context.Canceled or
// context.DeadlineExceeded) once it fires.  Cancellation is cooperative
// — latency is bounded by the executor's poll granularity — and never
// poisons the per-session count memo: a cancelled term's entry is
// evicted so later calls recompute.  Serving layers thread per-request
// deadlines through here.
func (c *Counter) CountCtx(ctx context.Context, b *structure.Structure) (*big.Int, error) {
	return c.countWith(ctx, b, c.curWorkers())
}

// CountParallel is Count with the unique φ⁻af terms evaluated
// concurrently on a bounded worker pool.  The counter's worker budget
// (WithWorkers, else EPCQ_WORKERS, else GOMAXPROCS) is split between the
// term fan-out and the executor inside each term.  Structures are safe
// for concurrent read-only use, the shared engine.Session is
// concurrency-safe, and the signed sum is order-independent, so the
// result is identical to Count.  Worth it when φ⁻af has several
// expensive terms.
func (c *Counter) CountParallel(b *structure.Structure) (*big.Int, error) {
	return c.CountParallelCtx(context.Background(), b)
}

// CountParallelCtx is CountParallel under a context (see CountCtx).
func (c *Counter) CountParallelCtx(ctx context.Context, b *structure.Structure) (*big.Int, error) {
	sess, err := c.sessionFor(b)
	if err != nil {
		return nil, err
	}
	if c.sentenceHolds(sess) {
		return c.Compiled.MaxCount(b), nil
	}
	outer, inner := c.splitWorkers(len(c.terms))
	results := make([]*big.Int, len(c.terms))
	err = engine.RunBoundedCtx(ctx, len(c.terms), outer, func(i int) error {
		v, err := c.termCountAt(ctx, i, sess, inner)
		results[i] = v
		return err
	})
	if err != nil {
		return nil, err
	}
	total := new(big.Int)
	for i := range c.terms {
		total.Add(total, new(big.Int).Mul(c.terms[i].coeff, results[i]))
	}
	return total, nil
}

// sessionFor validates b against the compiled signature and returns its
// shared engine session.
func (c *Counter) sessionFor(b *structure.Structure) (*engine.Session, error) {
	if !c.Compiled.Sig.Equal(b.Signature()) {
		return nil, fmt.Errorf("core: query signature %v differs from structure signature %v",
			c.Compiled.Sig, b.Signature())
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return engine.SessionFor(b), nil
}

// sentenceHolds reports whether some sentence disjunct holds on the
// session's structure (cached per session).
func (c *Counter) sentenceHolds(sess *engine.Session) bool {
	for _, th := range c.Compiled.Sentences {
		if sess.SentenceHolds(th.A) {
			return true
		}
	}
	return false
}

// CountBatch counts the query on every structure of the batch, spreading
// the structures over a bounded worker pool (the counter's worker
// budget, split between the batch fan-out and the executor inside each
// worker: large batches run one structure per worker with serial
// executors, small batches give each structure a share of the cores).
// Result i corresponds to bs[i].
func (c *Counter) CountBatch(bs []*structure.Structure) ([]*big.Int, error) {
	return c.CountBatchCtx(context.Background(), bs)
}

// CountBatchCtx is CountBatch under a context: once ctx fires, no
// further structures are started and the in-flight executors abort with
// ctx's error (see CountCtx).
func (c *Counter) CountBatchCtx(ctx context.Context, bs []*structure.Structure) ([]*big.Int, error) {
	outer, inner := c.splitWorkers(len(bs))
	out := make([]*big.Int, len(bs))
	err := engine.RunBoundedCtx(ctx, len(bs), outer, func(i int) error {
		v, err := c.countWith(ctx, bs[i], inner)
		out[i] = v
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// countWith is Count with an explicit executor worker budget per term:
// the paper's forward pipeline — sentence short-circuit, then the signed
// sum over the unique φ⁻af counting classes — executed through the
// session's per-fingerprint count memo.
func (c *Counter) countWith(ctx context.Context, b *structure.Structure, workers int) (*big.Int, error) {
	return c.countIntoWith(ctx, b, workers, new(big.Int))
}

// mulScratch pools the big.Int temporaries of the signed-sum loop so a
// memo-warm count allocates nothing for the coeff×count products.
var mulScratch = sync.Pool{New: func() any { return new(big.Int) }}

// countIntoWith is countWith accumulating into caller-owned dst (which
// is returned).  On the memo-warm path — every term's fingerprint
// settled in the session — it performs zero heap allocations: term
// counts come out of the session memo by pointer, the per-term product
// uses a pooled temporary, and dst absorbs the sum in place.
func (c *Counter) countIntoWith(ctx context.Context, b *structure.Structure, workers int, dst *big.Int) (*big.Int, error) {
	sess, err := c.sessionFor(b)
	if err != nil {
		return nil, err
	}
	if c.sentenceHolds(sess) {
		return dst.Set(c.Compiled.MaxCount(b)), nil
	}
	dst.SetInt64(0)
	tmp := mulScratch.Get().(*big.Int)
	for i := range c.terms {
		v, err := c.termCountAt(ctx, i, sess, workers)
		if err != nil {
			mulScratch.Put(tmp)
			return nil, err
		}
		tmp.Mul(c.terms[i].coeff, v)
		dst.Add(dst, tmp)
	}
	mulScratch.Put(tmp)
	return dst, nil
}

// CountInto is Count accumulating into caller-owned dst, which is
// returned.  When every term of the query is memo-warm in b's session
// (the steady state of serving workloads), the call performs zero heap
// allocations; see CountBatchInto for the batch form.
func (c *Counter) CountInto(ctx context.Context, b *structure.Structure, dst *big.Int) (*big.Int, error) {
	return c.countIntoWith(ctx, b, c.curWorkers(), dst)
}

// CountBatchInto is CountBatch writing into caller-owned out (len(out)
// must equal len(bs); out[i] must be non-nil and is overwritten in
// place).  With an effective worker budget of 1 the batch runs inline on
// the caller's goroutine, so a fully memo-warm batch is allocation-free
// end to end; wider budgets fan out like CountBatch.
func (c *Counter) CountBatchInto(ctx context.Context, bs []*structure.Structure, out []*big.Int) error {
	if len(out) != len(bs) {
		return fmt.Errorf("core: CountBatchInto out length %d != batch length %d", len(out), len(bs))
	}
	outer, inner := c.splitWorkers(len(bs))
	if outer == 1 {
		for i := range bs {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			if _, err := c.countIntoWith(ctx, bs[i], inner, out[i]); err != nil {
				return err
			}
		}
		return nil
	}
	return engine.RunBoundedCtx(ctx, len(bs), outer, func(i int) error {
		_, err := c.countIntoWith(ctx, bs[i], inner, out[i])
		return err
	})
}

// termCountAt evaluates the i-th unique term inside a session with the
// given executor worker budget, through the shared fingerprint-memoized
// execution helper (engine.CountKeyedCtx); the memo hit/miss telemetry
// feeds Stats.  The memoized value is shared and must be treated as
// read-only (every caller multiplies it into a fresh big.Int).
func (c *Counter) termCountAt(ctx context.Context, i int, sess *engine.Session, workers int) (*big.Int, error) {
	t := &c.terms[i]
	v, hit, err := engine.CountKeyedCtx(ctx, t.plan, t.fp, sess, workers)
	if t.fp != "" {
		if hit {
			c.countHits.Add(1)
		} else {
			c.countMisses.Add(1)
		}
	}
	return v, err
}

func (c *Counter) ppCounter() eptrans.PPCounter { return c.ppCounterWith(c.curWorkers()) }

func (c *Counter) ppCounterWith(workers int) eptrans.PPCounter {
	return func(p pp.PP, b *structure.Structure) (*big.Int, error) {
		if i, ok := c.termIdx[p.A]; ok {
			return c.termCountAt(context.Background(), i, engine.SessionFor(b), workers)
		}
		return count.PP(p, b, c.Engine)
	}
}

// Release drops the cached engine session of b (if any), freeing its
// materialized constraint tables ahead of LRU eviction.  Long-lived
// processes that are done with a structure can call this instead of
// waiting for the session registry's cap-pressure eviction.
func (c *Counter) Release(b *structure.Structure) { engine.ReleaseSession(b) }

// CountDirect evaluates the query by brute-force enumeration of liberal
// assignments: the reference semantics (exponential; for validation).
func (c *Counter) CountDirect(b *structure.Structure) (*big.Int, error) {
	return count.EPDirect(c.Compiled.Query, b)
}

// CountPP counts one member of φ⁺ directly with the configured engine.
func (c *Counter) CountPP(p pp.PP, b *structure.Structure) (*big.Int, error) {
	return count.PP(p, b, c.Engine)
}

// CountPPViaOracle counts a member of φ⁺ using only oracle access to the
// full ep-query — the backward slice reduction of Theorem 3.1, exposed so
// applications (and the E8 experiment) can exercise the interreduction.
func (c *Counter) CountPPViaOracle(p pp.PP, b *structure.Structure) (*big.Int, error) {
	oracle := func(y *structure.Structure) (*big.Int, error) {
		return eptrans.CountEPViaPP(c.Compiled, y, c.ppCounter())
	}
	return eptrans.CountPPViaEP(c.Compiled, p, b, oracle)
}

// Answers enumerates the answer set φ(B) (deduplicated assignments of
// the liberal variables, as element names aligned with the query head).
// fn returning false stops early; limit ≤ 0 means unlimited.  Returns the
// number of answers delivered.
func (c *Counter) Answers(b *structure.Structure, limit int, fn func(count.Answer) bool) (int, error) {
	if !c.Compiled.Sig.Equal(b.Signature()) {
		return 0, fmt.Errorf("core: query signature %v differs from structure signature %v",
			c.Compiled.Sig, b.Signature())
	}
	return count.EnumerateAnswers(c.Compiled.Sig, c.Compiled.Query.Lib, c.Compiled.Disjuncts, b, limit, fn)
}

// Classify returns the trichotomy verdict of the compiled query's φ⁺
// relative to the supplied width bounds.
func (c *Counter) Classify(wCore, wContract int) (classify.Verdict, error) {
	return classify.ClassifyPPSet(c.Compiled.Plus, wCore, wContract)
}

// Stats is a snapshot of the counter's term-interning and caching
// telemetry.
type Stats struct {
	// Pool is the canonical term pool's interning counters: raw
	// inclusion–exclusion terms (2^s − 1 over the free disjuncts), raw
	// terms absorbed pre-core, unique counting classes, classes whose
	// coefficients cancelled to zero (no plan built), and terms
	// classified by the pairwise-equivalence fallback.
	Pool term.Stats
	// Plans is the number of engine plans backing this counter: one per
	// unique φ⁻af term surviving the sentence-entailment filter.
	Plans int
	// SharedPlans is how many of those plans were already compiled (by
	// another Counter of the same counting class) and came out of the
	// fingerprint-keyed plan cache.
	SharedPlans int
	// CountCacheHits/CountCacheMisses are the session count-memo
	// outcomes across every Count/CountParallel/CountBatch call so far.
	CountCacheHits   uint64
	CountCacheMisses uint64
	// Workers is the counter's effective worker budget at snapshot time
	// (WithWorkers, else EPCQ_WORKERS, else GOMAXPROCS).
	Workers int
	// HardestCase is the worst trichotomy case among the terms under
	// the route bounds (RouteWCore, RouteWContract); TermsFPT/TermsHard
	// split the terms by routing decision.
	HardestCase                classify.Case
	RouteWCore, RouteWContract int
	TermsFPT, TermsHard        int
	// ClassifyAnalyses/ClassifyHits are the construction-time outcomes
	// of the fingerprint-keyed classification memo for this counter's
	// terms: analyses actually run vs reports reused.  A warm memo makes
	// ClassifyAnalyses 0 — classification runs once per interned class,
	// not once per Counter.
	ClassifyAnalyses, ClassifyHits int
	// ApproxCounts is the number of approximate term evaluations
	// (CountApprox hard-term executions) performed so far.
	ApproxCounts uint64
}

// String renders the telemetry block shared by Explain and epcount
// -stats.
func (st Stats) String() string {
	return fmt.Sprintf("term pool: %s\nplans: %d (one per unique surviving term; %d shared via fingerprint cache)\ncount cache: %d hits, %d misses\nworkers: %d\nrouting vs bounds (%d,%d): %s — %d exact term(s), %d approx term(s); classify memo: %d analyses, %d hits; approx evals: %d\n",
		st.Pool, st.Plans, st.SharedPlans, st.CountCacheHits, st.CountCacheMisses, st.Workers,
		st.RouteWCore, st.RouteWContract, st.HardestCase.Short(), st.TermsFPT, st.TermsHard,
		st.ClassifyAnalyses, st.ClassifyHits, st.ApproxCounts)
}

// Stats returns a consistent snapshot of the counter's interning and
// cache telemetry.  Safe to call concurrently with in-flight counting
// (the serving pattern: a /stats endpoint reading while request
// handlers count): the mutable counters are atomics, everything else in
// the snapshot is immutable after NewCounter.
func (c *Counter) Stats() Stats {
	st := Stats{
		Plans:            len(c.terms),
		SharedPlans:      c.sharedPlans,
		CountCacheHits:   c.countHits.Load(),
		CountCacheMisses: c.countMisses.Load(),
		Workers:          c.effWorkers(),
		HardestCase:      c.hardest,
		RouteWCore:       c.routeWCore,
		RouteWContract:   c.routeWContract,
		ClassifyAnalyses: c.classifyAnalyses,
		ClassifyHits:     c.classifyHits,
		ApproxCounts:     c.approxCounts.Load(),
	}
	for i := range c.terms {
		if c.terms[i].est != nil {
			st.TermsHard++
		} else {
			st.TermsFPT++
		}
	}
	if c.Compiled != nil && c.Compiled.Pool != nil {
		st.Pool = c.Compiled.Pool.Stats()
	}
	return st
}

// Explain renders a human-readable account of the compiled pipeline: the
// normalized disjuncts, φ*af with coefficients, φ⁻af and φ⁺, the
// per-formula structural parameters, and the term-pool / cache
// statistics.  The static report (which includes a classification pass)
// is built once per Counter and memoized; only the statistics block is
// refreshed per call.
func (c *Counter) Explain() string {
	c.explainOnce.Do(func() { c.explainStatic = c.buildExplain() })
	return c.explainStatic + c.explainStats()
}

// explainStats renders the dynamic interning/caching statistics block.
func (c *Counter) explainStats() string { return c.Stats().String() }

func (c *Counter) buildExplain() string {
	var b strings.Builder
	cp := c.Compiled
	fmt.Fprintf(&b, "query: %s\n", cp.Query)
	fmt.Fprintf(&b, "signature: %s\n", cp.Sig)
	fmt.Fprintf(&b, "normalized disjuncts: %d (%d free, %d sentence)\n",
		len(cp.Disjuncts), len(cp.Free), len(cp.Sentences))
	for i, d := range cp.Disjuncts {
		kind := "free"
		if d.IsSentence() {
			kind = "sentence"
		}
		fmt.Fprintf(&b, "  ψ%d (%s): %s\n", i+1, kind, d)
	}
	fmt.Fprintf(&b, "φ*af terms (after cancellation): %d\n", len(cp.Star))
	for _, t := range cp.Star {
		fmt.Fprintf(&b, "  %+d × %s\n", t.Coeff, t.Formula)
	}
	fmt.Fprintf(&b, "φ⁻af terms (surviving sentence-entailment filter): %d\n", len(cp.Minus))
	fmt.Fprintf(&b, "φ⁺ size: %d\n", len(cp.Plus))
	if v, err := c.Classify(1, 1); err == nil {
		fmt.Fprintf(&b, "classification vs bounds (1,1): %s\n", v)
		for i, r := range v.Reports {
			fmt.Fprintf(&b, "  φ⁺[%d]: core tw %d, contract tw %d, ∃-components %d (max interface %d)\n",
				i, r.CoreTreewidth, r.ContractTreewidth, r.NumExistsComponents, r.MaxInterface)
		}
	}
	return b.String()
}

// CountWithAllEngines runs the projection and FPT engines and checks they
// agree; returns the common count.  Used by validation tooling and tests.
func (c *Counter) CountWithAllEngines(b *structure.Structure) (*big.Int, error) {
	engines := []count.PPEngine{count.EngineProjection, count.EngineFPT}
	var result *big.Int
	for _, e := range engines {
		engine := e
		v, err := eptrans.CountEPViaPP(c.Compiled, b, func(p pp.PP, s *structure.Structure) (*big.Int, error) {
			return count.PP(p, s, engine)
		})
		if err != nil {
			return nil, fmt.Errorf("core: engine %v: %w", e, err)
		}
		if result == nil {
			result = v
		} else if result.Cmp(v) != 0 {
			return nil, fmt.Errorf("core: engines disagree: %v vs %v", result, v)
		}
	}
	return result, nil
}
