// Package core ties the paper's machinery into the production counting
// pipeline — the primary contribution of Chen & Mengel (PODS 2016) made
// executable.  A Counter compiles an ep-query once through the
// Theorem 3.1 front-end (normalization, inclusion–exclusion interned
// through the canonical term pool of internal/term, sentence-disjunct
// filtering) and then counts answers on any number of structures via
// the unique φ⁻af counting classes, each counted with the Theorem 2.11
// FPT algorithm (or a chosen fallback engine) through the fingerprint-
// keyed plan cache and the per-session count memo.  It also exposes the
// trichotomy classification of the compiled query (Theorem 3.2) and the
// interning/caching telemetry (Stats, Explain).
//
// Counters are built for long-lived concurrent use: counting methods
// have context variants (CountCtx, CountBatchCtx, CountParallelCtx)
// that thread per-request deadlines into the executor's cancellation
// polling, the worker budget (WithWorkers) is retunable while counts
// are in flight, and Stats snapshots race-free against all of it — the
// contract the HTTP service layer (internal/serve) is built on.
package core
