package core

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/big"

	"repro/internal/approx"
	"repro/internal/classify"
	"repro/internal/structure"
)

// Trichotomy-driven routing: every interned φ⁻af term is classified once
// at compile time (through the fingerprint-keyed classification memo)
// against the route bounds, and hard terms (cases 2/3 of Theorem 3.2)
// get an approximate-counting plan alongside the exact one.  The default
// Count path is untouched — exact execution stays bit-identical — while
// CountApprox routes each term to the cheapest sound executor: exact
// memoized counting for FPT terms, sampling for hard terms.

// DefaultRouteWCore and DefaultRouteWContract are the width bounds the
// router classifies terms against: (1, 1) matches the paper-canonical
// bounds Explain reports, putting every query whose φ⁻af cores exceed
// treewidth 1 into the hard regime.
const (
	DefaultRouteWCore     = 1
	DefaultRouteWContract = 1
)

// routeTerms classifies every compiled term against the width bounds and
// attaches approximate plans to the hard ones.  Called from NewCounter
// (and WithRouteBounds): not safe to run concurrently with counting.
func (c *Counter) routeTerms(wCore, wContract int) {
	c.routeWCore, c.routeWContract = wCore, wContract
	c.hardest = 0
	c.classifyAnalyses, c.classifyHits = 0, 0
	for i := range c.terms {
		t := &c.terms[i]
		if !t.analyzed {
			r, hit := classify.AnalyzeKeyed(t.formula, t.fp)
			t.report, t.analyzed = r, true
			if hit {
				c.classifyHits++
			} else {
				c.classifyAnalyses++
			}
		}
		t.caseOf = t.report.CaseFor(wCore, wContract)
		if t.caseOf.Hard() {
			if t.est == nil {
				t.est = approx.New(t.formula)
			}
		} else {
			t.est = nil
		}
		if t.caseOf > c.hardest {
			c.hardest = t.caseOf
		}
	}
	if c.hardest == 0 {
		c.hardest = classify.CaseFPT
	}
}

// WithRouteBounds re-routes the counter's terms against different width
// bounds (the trichotomy case of each term is recomputed from its
// memoized Report; no new treewidth searches run) and returns the
// counter for chaining.  Configure before serving: not safe to call
// concurrently with in-flight counting.
func (c *Counter) WithRouteBounds(wCore, wContract int) *Counter {
	c.routeTerms(wCore, wContract)
	return c
}

// HardestCase returns the worst trichotomy case among the counter's
// terms under the current route bounds — the admission-control signal:
// CaseFPT means every term has an exact FPT executor.
func (c *Counter) HardestCase() classify.Case { return c.hardest }

// TermRoute describes one term's routing decision, for tests and
// introspection.
type TermRoute struct {
	// FP is the term's canonical fingerprint ("" if unlabeled).
	FP string
	// Case is the term's trichotomy case under the route bounds.
	Case classify.Case
	// CoreTreewidth / ContractTreewidth are the measured widths.
	CoreTreewidth     int
	ContractTreewidth int
	// Approx reports whether the term carries an approximate plan.
	Approx bool
}

// Routes returns the per-term routing table under the current bounds.
func (c *Counter) Routes() []TermRoute {
	out := make([]TermRoute, len(c.terms))
	for i := range c.terms {
		t := &c.terms[i]
		out[i] = TermRoute{
			FP:                t.fp,
			Case:              t.caseOf,
			CoreTreewidth:     t.report.CoreTreewidth,
			ContractTreewidth: t.report.ContractTreewidth,
			Approx:            t.est != nil,
		}
	}
	return out
}

// HardExactError is the typed admission-control rejection: exact
// execution of a hard-classified query was refused because the structure
// exceeds the configured size threshold.  Callers switch to approx mode
// or shrink the instance.
type HardExactError struct {
	// Case is the query's hardest trichotomy case.
	Case classify.Case
	// Tuples is the structure's tuple count; Limit the admission bound.
	Tuples, Limit int
}

func (e *HardExactError) Error() string {
	return fmt.Sprintf("core: exact execution rejected: query is %s and structure has %d tuples (> limit %d); use approx mode",
		e.Case.Short(), e.Tuples, e.Limit)
}

// AdmitExact checks the admission rule for exact execution on b: queries
// whose hardest term is in the hard regime (cases 2/3) are rejected with
// a *HardExactError when b has more than maxTuples tuples.  maxTuples ≤ 0
// disables the rule.
func (c *Counter) AdmitExact(b *structure.Structure, maxTuples int) error {
	if maxTuples <= 0 || !c.hardest.Hard() {
		return nil
	}
	if t := b.NumTuples(); t > maxTuples {
		return &HardExactError{Case: c.hardest, Tuples: t, Limit: maxTuples}
	}
	return nil
}

// ApproxResult is one routed approximate count: the signed-sum estimate
// with its combined error bound and the routing/budget telemetry.
type ApproxResult struct {
	// Estimate is the point estimate of |φ(B)|.
	Estimate *big.Int
	// RelErr is the achieved relative half-width: the hard terms'
	// absolute half-widths, scaled by their coefficients, summed and
	// divided by |Estimate|.  0 when the count is exact.
	RelErr float64
	// Confidence is 1-δ when any term was sampled, 1 otherwise.
	Confidence float64
	// Samples is the total sampling budget spent across hard terms.
	Samples int
	// Case is the query's hardest trichotomy case (the routing driver).
	Case classify.Case
	// Exact reports that every term resolved exactly (FPT terms, plus
	// hard terms whose components all collapsed to exact factors).
	Exact bool
	// Converged reports whether every sampled term met its ε share
	// within its sample cap.
	Converged bool
	// ExactTerms / SampledTerms split the terms by executed path.
	ExactTerms, SampledTerms int
}

// termSeed derives a per-term RNG seed from the request seed, the term's
// fingerprint, and its index, so terms sample independently while the
// whole count stays reproducible for a fixed request seed.
func termSeed(seed int64, fp string, i int) int64 {
	if seed == 0 {
		seed = 1
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%s", seed, i, fp)
	s := int64(h.Sum64())
	if s == 0 {
		s = 1
	}
	return s
}

// CountApprox is CountApproxCtx with a background context.
func (c *Counter) CountApprox(b *structure.Structure, prm approx.Params) (ApproxResult, error) {
	return c.CountApproxCtx(context.Background(), b, prm)
}

// CountApproxCtx counts the query with trichotomy-driven routing: FPT
// terms run the exact memoized executor (bit-identical to Count), hard
// terms run the sampling estimator with an (ε, δ/h) share of the request
// budget (h = number of hard terms, so the union bound keeps the overall
// confidence at 1-δ).  Each hard term is estimated to relative error ε;
// the combined bound is exact for same-sign sums and reported honestly
// (RelErr) when inclusion–exclusion cancellation amplifies it.  The same
// Params.Seed always yields the same estimate.
func (c *Counter) CountApproxCtx(ctx context.Context, b *structure.Structure, prm approx.Params) (ApproxResult, error) {
	sess, err := c.sessionFor(b)
	if err != nil {
		return ApproxResult{}, err
	}
	res := ApproxResult{Case: c.hardest, Confidence: 1, Exact: true, Converged: true}
	if c.sentenceHolds(sess) {
		res.Estimate = c.Compiled.MaxCount(b)
		return res, nil
	}
	nHard := 0
	for i := range c.terms {
		if c.terms[i].est != nil {
			nHard++
		}
	}
	total := new(big.Int)
	absErr := 0.0
	sampledAny := false
	tmp := new(big.Int)
	for i := range c.terms {
		t := &c.terms[i]
		if t.est == nil {
			v, err := c.termCountAt(ctx, i, sess, c.curWorkers())
			if err != nil {
				return ApproxResult{}, err
			}
			total.Add(total, tmp.Mul(t.coeff, v))
			res.ExactTerms++
			continue
		}
		p := prm
		p.Delta = effDelta(prm.Delta) / float64(nHard)
		p.Seed = termSeed(prm.Seed, t.fp, i)
		r, err := t.est.Count(ctx, b, p)
		if err != nil {
			return ApproxResult{}, err
		}
		c.approxCounts.Add(1)
		res.SampledTerms++
		res.Samples += r.Samples
		res.Converged = res.Converged && r.Converged
		if !r.Exact {
			res.Exact = false
			sampledAny = true
		}
		total.Add(total, tmp.Mul(t.coeff, r.Estimate))
		coefAbs, _ := new(big.Float).SetInt(tmp.Abs(t.coeff)).Float64()
		absErr += coefAbs * r.AbsErr
	}
	res.Estimate = total
	if sampledAny {
		res.Confidence = 1 - effDelta(prm.Delta)
		totF, _ := new(big.Float).SetInt(tmp.Abs(total)).Float64()
		switch {
		case absErr == 0:
			res.RelErr = 0
		case totF == 0:
			// The signed sum cancelled to zero while carrying sampling
			// error: no relative bound exists; report full uncertainty.
			res.RelErr = 1
		default:
			res.RelErr = absErr / totF
		}
	}
	return res, nil
}

// effDelta resolves the request δ the same way approx.Params does, so
// the reported confidence matches the per-term budget split.
func effDelta(d float64) float64 {
	if d <= 0 || d >= 1 {
		return 0.05
	}
	return d
}
