// Package workload generates the synthetic structures and query families
// used by the tests, examples and the experiment harness: random and
// structured graphs encoded as binary structures, random relational
// structures, random pp/ep queries, and the named query families whose
// complexity the trichotomy classifies (paths: FPT; quantified cliques:
// case 2; free cliques: case 3).  All randomness is seeded and
// deterministic.
package workload
