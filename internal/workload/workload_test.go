package workload

import (
	"testing"

	"repro/internal/logic"
)

func TestGraphGenerators(t *testing.T) {
	if g := PathGraph(5); g.NumEdges() != 4 || !g.IsConnected() {
		t.Fatal("path wrong")
	}
	if g := CycleGraph(5); g.NumEdges() != 5 {
		t.Fatal("cycle wrong")
	}
	if g := CompleteGraph(6); g.NumEdges() != 15 {
		t.Fatal("complete wrong")
	}
	if g := GridGraph(3, 4); g.N() != 12 || g.NumEdges() != 17 {
		t.Fatalf("grid wrong: %d edges", GridGraph(3, 4).NumEdges())
	}
	g := PlantedClique(12, 0.1, 5, 42)
	if !g.HasClique(5) {
		t.Fatal("planted clique missing")
	}
}

func TestERDeterminism(t *testing.T) {
	a := ER(10, 0.5, 7)
	b := ER(10, 0.5, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("ER not deterministic for equal seeds")
	}
	c := ER(10, 0.5, 8)
	if a.NumEdges() == c.NumEdges() && a.String() == c.String() {
		t.Fatal("different seeds should (overwhelmingly) differ")
	}
}

func TestGraphStructureSymmetric(t *testing.T) {
	g := PathGraph(3)
	s := GraphStructure(g)
	if s.Size() != 3 {
		t.Fatal("size wrong")
	}
	// Both orientations present.
	if len(s.Tuples("E")) != 4 {
		t.Fatalf("tuples = %d, want 4 (2 edges × 2 orientations)", len(s.Tuples("E")))
	}
}

func TestRandomStructureDensity(t *testing.T) {
	s0 := RandomStructure(EdgeSig(), 5, 0, 3)
	if s0.NumTuples() != 0 {
		t.Fatal("density 0 should have no tuples")
	}
	s1 := RandomStructure(EdgeSig(), 5, 1, 3)
	if s1.NumTuples() != 25 {
		t.Fatalf("density 1 should have all 25 tuples, got %d", s1.NumTuples())
	}
}

func TestQueryFamilies(t *testing.T) {
	p := PathQuery(3)
	if len(p.Lib) != 2 {
		t.Fatal("path query lib wrong")
	}
	if len(p.Disjuncts()) != 1 {
		t.Fatal("path query should be pp")
	}
	fp := FreePathQuery(3)
	if len(fp.Lib) != 4 {
		t.Fatal("free path lib wrong")
	}
	c := CliqueQuery(4)
	if len(c.Lib) != 4 || len(logic.Atoms(c.F)) != 6 {
		t.Fatal("clique query wrong")
	}
	cs := CliqueSentence(4)
	if len(cs.Lib) != 0 {
		t.Fatal("clique sentence should have no liberal variables")
	}
	st := StarQuery(3)
	if len(st.Lib) != 3 || len(logic.Atoms(st.F)) != 3 {
		t.Fatal("star query wrong")
	}
	cy := CycleQuery(4)
	if len(logic.Atoms(cy.F)) != 4 {
		t.Fatal("cycle query wrong")
	}
}

func TestRandomQueriesValid(t *testing.T) {
	sig := EdgeSig()
	for seed := int64(0); seed < 10; seed++ {
		q := RandomPPQuery(sig, 4, 2, 3, seed)
		if len(q.Disjuncts()) != 1 {
			t.Fatalf("seed %d: random pp query has %d disjuncts", seed, len(q.Disjuncts()))
		}
		ep := RandomEPQuery(sig, 3, 3, 2, 2, seed)
		if len(ep.Disjuncts()) != 3 {
			t.Fatalf("seed %d: random ep query has %d disjuncts", seed, len(ep.Disjuncts()))
		}
	}
}

func TestSocialNetwork(t *testing.T) {
	s := SocialNetwork(20, 5, 3, 1)
	if s.Size() != 28 {
		t.Fatalf("social network size = %d, want 28", s.Size())
	}
	if len(s.Tuples("Follows")) == 0 || len(s.Tuples("Likes")) == 0 || len(s.Tuples("Member")) == 0 {
		t.Fatal("social network relations empty")
	}
	// Deterministic for equal seeds.
	s2 := SocialNetwork(20, 5, 3, 1)
	if s.NumTuples() != s2.NumTuples() {
		t.Fatal("social network not deterministic")
	}
}
