package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/logic"
	"repro/internal/structure"
)

// EdgeSig is the one-binary-relation signature {E/2} used for graph
// encodings.
func EdgeSig() *structure.Signature {
	return structure.MustSignature(structure.RelSym{Name: "E", Arity: 2})
}

// GraphStructure encodes an undirected graph as a structure over {E/2}
// with both orientations of every edge (so pp-queries written with single
// orientations behave symmetrically).
func GraphStructure(g *graph.Graph) *structure.Structure {
	s := structure.New(EdgeSig())
	for v := 0; v < g.N(); v++ {
		s.EnsureElem(fmt.Sprintf("v%d", v))
	}
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			_ = s.AddTuple("E", v, u)
		}
	}
	return s
}

// ER returns an Erdős–Rényi random graph G(n, p).
func ER(n int, p float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// PathGraph returns the path on n vertices.
func PathGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// CycleGraph returns the cycle on n vertices (n ≥ 3).
func CycleGraph(n int) *graph.Graph {
	g := PathGraph(n)
	if n >= 3 {
		g.AddEdge(n-1, 0)
	}
	return g
}

// CompleteGraph returns K_n.
func CompleteGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

// GridGraph returns the r×c grid.
func GridGraph(r, c int) *graph.Graph {
	g := graph.New(r * c)
	id := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				g.AddEdge(id(i, j), id(i, j+1))
			}
			if i+1 < r {
				g.AddEdge(id(i, j), id(i+1, j))
			}
		}
	}
	return g
}

// PlantedClique returns G(n,p) with a planted k-clique on random vertices.
func PlantedClique(n int, p float64, k int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := ER(n, p, seed+1)
	perm := rng.Perm(n)
	if k > n {
		k = n
	}
	g.AddClique(perm[:k])
	return g
}

// RandomStructure returns a structure over sig with n elements where each
// possible tuple is present independently with probability density.
func RandomStructure(sig *structure.Signature, n int, density float64, seed int64) *structure.Structure {
	rng := rand.New(rand.NewSource(seed))
	s := structure.New(sig)
	for i := 0; i < n; i++ {
		s.EnsureElem(fmt.Sprintf("e%d", i))
	}
	for _, r := range sig.Rels() {
		t := make([]int, r.Arity)
		var sweep func(p int)
		sweep = func(p int) {
			if p == r.Arity {
				if rng.Float64() < density {
					_ = s.AddTuple(r.Name, t...)
				}
				return
			}
			for v := 0; v < n; v++ {
				t[p] = v
				sweep(p + 1)
			}
		}
		sweep(0)
	}
	return s
}

// PathQuery returns the length-L path query with free endpoints and
// quantified interior:
//
//	p(s,t) := ∃u1..u_{L-1}. E(s,u1) ∧ E(u1,u2) ∧ … ∧ E(u_{L-1},t)
//
// Its core has treewidth 1 and its contract graph is a single edge {s,t},
// so the family {PathQuery(L)} satisfies the tractability condition
// (case 1 of Theorem 3.2).
func PathQuery(length int) logic.Query {
	if length < 1 {
		panic("workload: path length must be ≥ 1")
	}
	vars := make([]logic.Var, length+1)
	vars[0] = "s"
	vars[length] = "t"
	for i := 1; i < length; i++ {
		vars[i] = logic.Var(fmt.Sprintf("u%d", i))
	}
	var atoms []logic.Formula
	for i := 0; i < length; i++ {
		atoms = append(atoms, logic.Atom{Rel: "E", Args: []logic.Var{vars[i], vars[i+1]}})
	}
	body := logic.Exist(vars[1:length], logic.Conj(atoms...))
	return logic.MustQuery(fmt.Sprintf("path%d", length), []logic.Var{"s", "t"}, body)
}

// FreePathQuery returns the length-L path query with every vertex free:
// counts homomorphic images of the path (walks).
func FreePathQuery(length int) logic.Query {
	vars := make([]logic.Var, length+1)
	for i := range vars {
		vars[i] = logic.Var(fmt.Sprintf("x%d", i))
	}
	var atoms []logic.Formula
	for i := 0; i < length; i++ {
		atoms = append(atoms, logic.Atom{Rel: "E", Args: []logic.Var{vars[i], vars[i+1]}})
	}
	return logic.MustQuery(fmt.Sprintf("fpath%d", length), vars, logic.Conj(atoms...))
}

// CliqueQuery returns the free k-clique query
//
//	c(x1..xk) := ⋀_{i<j} E(xi,xj)
//
// On a symmetric loop-free graph encoding its answer count is
// k!·(#k-cliques), which makes the family {CliqueQuery(k)} hard for
// p-#Clique (case 3 of Theorem 3.2: the contract graph is K_k).
func CliqueQuery(k int) logic.Query {
	vars := make([]logic.Var, k)
	for i := range vars {
		vars[i] = logic.Var(fmt.Sprintf("x%d", i+1))
	}
	var atoms []logic.Formula
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			atoms = append(atoms, logic.Atom{Rel: "E", Args: []logic.Var{vars[i], vars[j]}})
		}
	}
	return logic.MustQuery(fmt.Sprintf("clique%d", k), vars, logic.Conj(atoms...))
}

// CliqueSentence returns the Boolean k-clique query
//
//	s() := ∃x1..xk ⋀_{i<j} E(xi,xj)
//
// All variables are quantified: the contract graph is empty (contraction
// condition holds) but the core is K_k (treewidth k-1), so the family sits
// in case 2 of Theorem 3.2 — equivalent to p-Clique.
func CliqueSentence(k int) logic.Query {
	vars := make([]logic.Var, k)
	for i := range vars {
		vars[i] = logic.Var(fmt.Sprintf("x%d", i+1))
	}
	var atoms []logic.Formula
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			atoms = append(atoms, logic.Atom{Rel: "E", Args: []logic.Var{vars[i], vars[j]}})
		}
	}
	return logic.MustQuery(fmt.Sprintf("cliquesent%d", k), nil, logic.Exist(vars, logic.Conj(atoms...)))
}

// StarQuery returns the k-leaf star query with a quantified center:
//
//	s(x1..xk) := ∃c. ⋀_i E(c,xi)
//
// Its contract graph is K_k (all leaves share the center's ∃-component),
// another canonical case-3 family.
func StarQuery(k int) logic.Query {
	vars := make([]logic.Var, k)
	for i := range vars {
		vars[i] = logic.Var(fmt.Sprintf("x%d", i+1))
	}
	var atoms []logic.Formula
	for i := 0; i < k; i++ {
		atoms = append(atoms, logic.Atom{Rel: "E", Args: []logic.Var{"c", vars[i]}})
	}
	return logic.MustQuery(fmt.Sprintf("star%d", k), vars, logic.Exist([]logic.Var{"c"}, logic.Conj(atoms...)))
}

// CycleQuery returns the free k-cycle query (k ≥ 3).
func CycleQuery(k int) logic.Query {
	vars := make([]logic.Var, k)
	for i := range vars {
		vars[i] = logic.Var(fmt.Sprintf("x%d", i+1))
	}
	var atoms []logic.Formula
	for i := 0; i < k; i++ {
		atoms = append(atoms, logic.Atom{Rel: "E", Args: []logic.Var{vars[i], vars[(i+1)%k]}})
	}
	return logic.MustQuery(fmt.Sprintf("cycle%d", k), vars, logic.Conj(atoms...))
}

// RandomPPQuery returns a random pp-query over sig with the given number
// of variables (nFree of them liberal) and atoms.
func RandomPPQuery(sig *structure.Signature, nVars, nFree, nAtoms int, seed int64) logic.Query {
	rng := rand.New(rand.NewSource(seed))
	if nFree > nVars {
		nFree = nVars
	}
	vars := make([]logic.Var, nVars)
	for i := range vars {
		vars[i] = logic.Var(fmt.Sprintf("v%d", i))
	}
	rels := sig.Rels()
	var atoms []logic.Formula
	for a := 0; a < nAtoms; a++ {
		r := rels[rng.Intn(len(rels))]
		args := make([]logic.Var, r.Arity)
		for p := range args {
			args[p] = vars[rng.Intn(nVars)]
		}
		atoms = append(atoms, logic.Atom{Rel: r.Name, Args: args})
	}
	lib := vars[:nFree]
	body := logic.Exist(vars[nFree:], logic.Conj(atoms...))
	// Quantifiers over variables that ended up unused are dropped by the
	// DNF translation; the query remains valid.
	return logic.MustQuery(fmt.Sprintf("randpp_%d", seed), lib, body)
}

// RandomEPQuery returns a random ep-query: a disjunction of nDisjuncts
// random pp-queries sharing the same liberal variables.
func RandomEPQuery(sig *structure.Signature, nDisjuncts, nVars, nFree, nAtoms int, seed int64) logic.Query {
	rng := rand.New(rand.NewSource(seed))
	var parts []logic.Formula
	var lib []logic.Var
	for d := 0; d < nDisjuncts; d++ {
		q := RandomPPQuery(sig, nVars, nFree, nAtoms, rng.Int63())
		if d == 0 {
			lib = q.Lib
		}
		parts = append(parts, q.F)
	}
	return logic.MustQuery(fmt.Sprintf("randep_%d", seed), lib, logic.Disj(parts...))
}

// SocialNetwork generates the social-graph structure used by the examples
// and benches: persons with Follows edges (directed), Likes edges from
// persons to items, and Member edges from persons to groups.
func SocialNetwork(nPersons, nItems, nGroups int, seed int64) *structure.Structure {
	rng := rand.New(rand.NewSource(seed))
	sig := structure.MustSignature(
		structure.RelSym{Name: "Follows", Arity: 2},
		structure.RelSym{Name: "Likes", Arity: 2},
		structure.RelSym{Name: "Member", Arity: 2},
	)
	s := structure.New(sig)
	for i := 0; i < nPersons; i++ {
		s.EnsureElem(fmt.Sprintf("p%d", i))
	}
	for i := 0; i < nItems; i++ {
		s.EnsureElem(fmt.Sprintf("i%d", i))
	}
	for i := 0; i < nGroups; i++ {
		s.EnsureElem(fmt.Sprintf("g%d", i))
	}
	person := func(i int) int { return i }
	item := func(i int) int { return nPersons + i }
	group := func(i int) int { return nPersons + nItems + i }
	// Preferential-attachment-flavored follows.
	for i := 1; i < nPersons; i++ {
		deg := 1 + rng.Intn(3)
		for d := 0; d < deg; d++ {
			j := rng.Intn(i)
			_ = s.AddTuple("Follows", person(i), person(j))
			if rng.Float64() < 0.3 {
				_ = s.AddTuple("Follows", person(j), person(i))
			}
		}
	}
	for i := 0; i < nPersons; i++ {
		for d := 0; d < 1+rng.Intn(4); d++ {
			_ = s.AddTuple("Likes", person(i), item(rng.Intn(maxInt(nItems, 1))))
		}
		if nGroups > 0 && rng.Float64() < 0.8 {
			_ = s.AddTuple("Member", person(i), group(rng.Intn(nGroups)))
		}
	}
	return s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
