GO ?= go

.PHONY: build test race vet doccheck bench bench-smoke fuzz-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Documentation bar: every exported symbol of the public epcq package
# and internal/serve has a doc comment; every internal/* package has a
# non-trivial package comment.
doccheck:
	$(GO) run ./scripts/doccheck

# Full benchmark pass: executor/bag-join micro-benchmarks (3 runs each,
# raw output under bench-out/) plus the machine-readable experiment
# tables (BENCH_<id>.json).  See scripts/bench.sh for the methodology
# used to produce the curated BENCH_pr<N>.json comparisons at the repo
# root.
bench:
	./scripts/bench.sh

# Short bench suite + the same-machine parallel-regression guard: the
# guard re-counts a medium multi-bag instance with 1 worker and with the
# full budget and fails if the parallel executor is more than 2x slower
# than the serial one — catching synchronization regressions without
# depending on absolute CI machine speed.
bench-smoke:
	$(GO) test -run XXX -bench 'JoinCount|FPT|UnionDedup' -benchmem -benchtime 0.2s .
	EPCQ_BENCH_SMOKE=1 $(GO) test -run TestBenchSmoke -v ./internal/engine
	EPCQ_BENCH_SMOKE=1 $(GO) test -run TestBenchSmoke -v ./internal/serve

fuzz-smoke:
	$(GO) test -run XXX -fuzz FuzzParseQuery -fuzztime 10s ./internal/parser
	$(GO) test -run XXX -fuzz FuzzParseStructure -fuzztime 10s ./internal/parser
	$(GO) test -run XXX -fuzz FuzzFingerprintInvariance -fuzztime 10s ./internal/term
