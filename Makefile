GO ?= go

.PHONY: build test race vet doccheck bench bench-smoke bench-baseline bench-compare fuzz-smoke crash-smoke cluster-smoke approx-smoke

# Hot-path micro-benchmarks the bench-baseline / bench-compare pair
# tracks: bitmap intersection, prefix-index probe+build, memo-warm batch
# serving.
MICRO_BENCH = Intersect_|IndexProbe_|IndexBuild_|CountBatchInto_
MICRO_PKGS  = ./internal/structure ./internal/engine ./internal/core

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Documentation bar: every exported symbol of the public epcq package
# and internal/serve has a doc comment; every internal/* package has a
# non-trivial package comment.
doccheck:
	$(GO) run ./scripts/doccheck

# Full benchmark pass: executor/bag-join micro-benchmarks (3 runs each,
# raw output under bench-out/) plus the machine-readable experiment
# tables (BENCH_<id>.json).  See scripts/bench.sh for the methodology
# used to produce the curated BENCH_pr<N>.json comparisons at the repo
# root.
bench:
	./scripts/bench.sh

# Short bench suite + the same-machine parallel-regression guard: the
# guard re-counts a medium multi-bag instance with 1 worker and with the
# full budget and fails if the parallel executor is more than 2x slower
# than the serial one — catching synchronization regressions without
# depending on absolute CI machine speed.
bench-smoke:
	$(GO) test -run XXX -bench 'JoinCount|FPT|UnionDedup' -benchmem -benchtime 0.2s .
	EPCQ_BENCH_SMOKE=1 $(GO) test -run TestBenchSmoke -v ./internal/engine
	EPCQ_BENCH_SMOKE=1 $(GO) test -run TestBenchSmoke -v ./internal/serve

# Record the current tree's micro-benchmark medians as the comparison
# baseline (run this on the commit you want to compare against).
bench-baseline:
	mkdir -p bench-out
	$(GO) test -run XXX -bench '$(MICRO_BENCH)' -benchmem -count 5 -benchtime 0.2s $(MICRO_PKGS) | tee bench-out/micro_base.txt

# Re-run the micro-benchmarks and compare against the recorded baseline
# with the in-repo comparator (no external benchstat): prints median
# deltas and fails if the arena/open-addressing hot paths regressed to
# allocating — the intersection, probe, and memo-warm benches must stay
# at their baseline allocs/op.
bench-compare:
	@test -f bench-out/micro_base.txt || { echo "bench-compare: run 'make bench-baseline' first"; exit 1; }
	$(GO) test -run XXX -bench '$(MICRO_BENCH)' -benchmem -count 5 -benchtime 0.2s $(MICRO_PKGS) | tee bench-out/micro_new.txt
	$(GO) run ./scripts/benchcmp -allocguard 'Intersect_Bitmap|IndexProbe_OpenAddr|CountBatchInto_MemoWarm' bench-out/micro_base.txt bench-out/micro_new.txt

fuzz-smoke:
	$(GO) test -run XXX -fuzz FuzzParseQuery -fuzztime 10s ./internal/parser
	$(GO) test -run XXX -fuzz FuzzParseStructure -fuzztime 10s ./internal/parser
	$(GO) test -run XXX -fuzz FuzzFingerprintInvariance -fuzztime 10s ./internal/term
	$(GO) test -run XXX -fuzz FuzzWALRecordDecode -fuzztime 10s ./internal/wal
	$(GO) test -run XXX -fuzz FuzzSnapshotDecode -fuzztime 10s ./internal/wal

# Crash-recovery fault matrix under the race detector: every-byte-prefix
# and every-bit-flip WAL recovery, kill-restart differentials (torn tail
# + dropped page cache) at both the store and serving layers, compaction
# crash points, and the shutdown writer-drain regression test.
crash-smoke:
	$(GO) test -race -count=1 ./internal/wal
	$(GO) test -race -count=1 -run 'TestServeRecovery|TestAppendIdempotency|TestShutdownDrains|TestHealthz|TestServerRestart|TestKillRestartLiveStream|TestCompactionUnderLoad' ./internal/serve

# Cluster suite under the race detector: the randomized
# coordinator-vs-single-node differential over real loopback HTTP, the
# 503-mid-shutdown scatter-gather reroute regression, dead-shard
# failover, the consistent-hash stability property test, and the
# partitioned-count recombination differentials.
cluster-smoke:
	$(GO) test -race -count=1 ./internal/cluster

# Statistical acceptance suite for the approximate-counting engine,
# swept across several disjoint fixed-seed matrices: unbiasedness of the
# fixed-budget estimator, (ε, δ) interval coverage against exact ground
# truth, routing differentials (FPT bit-identical, hard sampled), and
# the serve/cluster approx wire contracts under the race detector.  The
# tolerances carry a Chernoff-style failure budget, so a red matrix
# means estimator bias, not bad luck.
approx-smoke:
	for base in 1 10001 20002 30003; do \
		EPCQ_APPROX_SEED_BASE=$$base $(GO) test -count=1 ./internal/approx || exit 1; \
	done
	$(GO) test -race -count=1 ./internal/approx ./internal/hom
	$(GO) test -race -count=1 -run 'TestRoutingMatchesClassify|TestFPTApproxBitIdentical|TestHardRoutingSamples|TestWithRouteBoundsReroutes|TestClassificationMemoizedPerFingerprint' ./internal/core
	$(GO) test -race -count=1 -run 'Approx|TestHardExactAdmission|TestCountModeValidation' ./internal/serve ./internal/cluster
