#!/bin/sh
# Full benchmark pass for the counting engine.  Produces:
#
#   bench-out/joincount.txt   executor micro-benchmarks (-count 3 raw output)
#   bench-out/store.txt       relation store / hom / materialization benches
#   bench-out/BENCH_<id>.json machine-readable experiment tables (epbench)
#
# Methodology for the curated BENCH_pr<N>.json files at the repo root
# (see also the "note" field inside each): check out the previous PR's
# commit, run this script there, run it again on the current tree, and
# take the per-benchmark median of the three -count runs from each side.
# Batch-to-batch machine noise can exceed small deltas; re-measure
# suspicious rows with interleaved old/new runs before reporting them.
# Record the worker budget (EPCQ_WORKERS / -workers) and core count next
# to any parallel-executor row: on a 1-core host WMax rows measure
# synchronization overhead, not speedup.
set -e
cd "$(dirname "$0")/.."
mkdir -p bench-out

echo "== executor / join-count benchmarks (3 runs) =="
go test -run XXX -bench 'JoinCount|FPT|CountBatch|CounterParallel|UnionDedup' -benchmem -count 3 . | tee bench-out/joincount.txt

echo "== store / hom / materialization benchmarks (3 runs) =="
go test -run XXX -bench 'Store_|Hom_|Materialize_' -benchmem -count 3 ./internal/structure ./internal/hom ./internal/engine | tee bench-out/store.txt

echo "== experiment tables (machine-readable) =="
go run ./cmd/epbench -quick -json bench-out/

echo "done: raw results under bench-out/"
