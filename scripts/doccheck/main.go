// Command doccheck enforces the repo's documentation bar:
//
//  1. every exported top-level symbol (and method) of the public epcq
//     package and of internal/serve carries a doc comment;
//  2. every internal/* package has a non-trivial package comment.
//
// It exits non-zero listing every violation.  CI runs it next to go
// vet; locally: go run ./scripts/doccheck (or make doccheck).
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// minPackageDoc is the least package-comment length (in characters of
// comment text) counted as non-trivial.
const minPackageDoc = 120

func main() {
	var problems []string

	// 1. Exported-symbol doc coverage on the public surface.
	for _, dir := range []string{".", "internal/serve"} {
		ps, err := checkExportedDocs(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		problems = append(problems, ps...)
	}

	// 2. Non-trivial package comments across internal/*.
	dirs, err := filepath.Glob("internal/*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(2)
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
			continue
		}
		ps, err := checkPackageDoc(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		problems = append(problems, ps...)
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("doccheck: ok")
}

// parseDir parses a directory's non-test Go files with comments.
func parseDir(dir string) (*token.FileSet, map[string]*ast.Package, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	return fset, pkgs, err
}

// checkPackageDoc requires one substantial package comment in dir.
func checkPackageDoc(dir string) ([]string, error) {
	_, pkgs, err := parseDir(dir)
	if err != nil {
		return nil, err
	}
	var problems []string
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		best := 0
		for _, f := range pkg.Files {
			if f.Doc != nil {
				if n := len(f.Doc.Text()); n > best {
					best = n
				}
			}
		}
		switch {
		case best == 0:
			problems = append(problems, fmt.Sprintf("%s: package %s has no package comment", dir, name))
		case best < minPackageDoc:
			problems = append(problems, fmt.Sprintf("%s: package %s has a trivial package comment (%d chars < %d)", dir, name, best, minPackageDoc))
		}
	}
	return problems, nil
}

// checkExportedDocs requires a doc comment on every exported top-level
// declaration and method in dir.  A const/var/type group's doc covers
// its specs.
func checkExportedDocs(dir string) ([]string, error) {
	fset, pkgs, err := parseDir(dir)
	if err != nil {
		return nil, err
	}
	var problems []string
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s lacks a doc comment", p.Filename, p.Line, what))
	}
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") || name == "main" && dir != "." {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || d.Doc != nil {
						continue
					}
					if d.Recv != nil {
						// Methods: only require docs when the receiver
						// type is exported.
						if !exportedRecv(d.Recv) {
							continue
						}
						report(d.Pos(), fmt.Sprintf("method %s", d.Name.Name))
					} else {
						report(d.Pos(), fmt.Sprintf("function %s", d.Name.Name))
					}
				case *ast.GenDecl:
					groupDoc := d.Doc != nil
					for _, spec := range d.Specs {
						switch sp := spec.(type) {
						case *ast.TypeSpec:
							if sp.Name.IsExported() && !groupDoc && sp.Doc == nil {
								report(sp.Pos(), fmt.Sprintf("type %s", sp.Name.Name))
							}
						case *ast.ValueSpec:
							if groupDoc || sp.Doc != nil || sp.Comment != nil {
								continue
							}
							for _, n := range sp.Names {
								if n.IsExported() {
									report(sp.Pos(), fmt.Sprintf("value %s", n.Name))
									break
								}
							}
						}
					}
				}
			}
		}
	}
	return problems, nil
}

// exportedRecv reports whether a method receiver names an exported type.
func exportedRecv(recv *ast.FieldList) bool {
	if recv == nil || len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}
