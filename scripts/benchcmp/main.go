// Command benchcmp compares two `go test -bench` output files without
// external tooling: it takes the per-benchmark median of however many
// -count runs each file holds and prints old vs new ns/op, B/op, and
// allocs/op side by side.
//
// Usage:
//
//	go run ./scripts/benchcmp [-allocguard REGEX] old.txt new.txt
//
// With -allocguard, the command exits non-zero if any benchmark whose
// name matches REGEX allocates more objects per op in new.txt than in
// old.txt — the allocation-regression guard `make bench-compare` runs
// over the intersection and index-probe micro-benchmarks.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// sample is one benchmark line's measurements.
type sample struct {
	nsPerOp     float64
	bytesPerOp  float64
	allocsPerOp float64
	hasMem      bool
}

// result is the per-benchmark median across a file's -count runs.
type result struct {
	name string
	sample
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

func parseFile(path string) (map[string][]sample, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	runs := make(map[string][]sample)
	var order []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		var s sample
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				s.nsPerOp = v
			case "B/op":
				s.bytesPerOp = v
				s.hasMem = true
			case "allocs/op":
				s.allocsPerOp = v
				s.hasMem = true
			}
		}
		if _, seen := runs[m[1]]; !seen {
			order = append(order, m[1])
		}
		runs[m[1]] = append(runs[m[1]], s)
	}
	return runs, order, sc.Err()
}

func median(ss []sample, get func(sample) float64) float64 {
	vs := make([]float64, len(ss))
	for i, s := range ss {
		vs[i] = get(s)
	}
	sort.Float64s(vs)
	n := len(vs)
	if n%2 == 1 {
		return vs[n/2]
	}
	return (vs[n/2-1] + vs[n/2]) / 2
}

func medians(runs map[string][]sample, order []string) []result {
	out := make([]result, 0, len(order))
	for _, name := range order {
		ss := runs[name]
		r := result{name: name}
		r.nsPerOp = median(ss, func(s sample) float64 { return s.nsPerOp })
		r.bytesPerOp = median(ss, func(s sample) float64 { return s.bytesPerOp })
		r.allocsPerOp = median(ss, func(s sample) float64 { return s.allocsPerOp })
		r.hasMem = ss[0].hasMem
		out = append(out, r)
	}
	return out
}

func fmtNs(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fms", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2fµs", v/1e3)
	default:
		return fmt.Sprintf("%.1fns", v)
	}
}

func main() {
	allocGuard := flag.String("allocguard", "", "fail if allocs/op rose for benchmarks matching this regex")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp [-allocguard REGEX] old.txt new.txt")
		os.Exit(2)
	}
	var guard *regexp.Regexp
	if *allocGuard != "" {
		var err error
		if guard, err = regexp.Compile(*allocGuard); err != nil {
			fmt.Fprintln(os.Stderr, "benchcmp:", err)
			os.Exit(2)
		}
	}
	oldRuns, oldOrder, err := parseFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	newRuns, _, err := parseFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	oldMed := medians(oldRuns, oldOrder)
	newByName := make(map[string]result)
	for _, r := range medians(newRuns, sortedKeys(newRuns)) {
		newByName[r.name] = r
	}

	fmt.Printf("%-44s %12s %12s %8s %14s\n", "benchmark (medians)", "old ns/op", "new ns/op", "delta", "allocs old→new")
	var regressions []string
	guarded := 0
	for _, o := range oldMed {
		n, ok := newByName[o.name]
		if !ok {
			fmt.Printf("%-44s %12s %12s %8s %14s\n", o.name, fmtNs(o.nsPerOp), "-", "-", "-")
			continue
		}
		delta := "-"
		if o.nsPerOp > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(n.nsPerOp-o.nsPerOp)/o.nsPerOp)
		}
		allocs := "-"
		if o.hasMem && n.hasMem {
			allocs = fmt.Sprintf("%.0f→%.0f", o.allocsPerOp, n.allocsPerOp)
		}
		fmt.Printf("%-44s %12s %12s %8s %14s\n", o.name, fmtNs(o.nsPerOp), fmtNs(n.nsPerOp), delta, allocs)
		if guard != nil && guard.MatchString(o.name) && o.hasMem && n.hasMem {
			guarded++
			if n.allocsPerOp > o.allocsPerOp {
				regressions = append(regressions,
					fmt.Sprintf("%s: %.1f → %.1f allocs/op", o.name, o.allocsPerOp, n.allocsPerOp))
			}
		}
	}
	if guard != nil {
		if guarded == 0 {
			fmt.Fprintf(os.Stderr, "benchcmp: allocation guard %q matched no benchmarks present in both files\n", *allocGuard)
			os.Exit(1)
		}
		if len(regressions) > 0 {
			fmt.Fprintln(os.Stderr, "benchcmp: allocation regressions:")
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "  "+r)
			}
			os.Exit(1)
		}
		fmt.Printf("allocation guard: %d benchmark(s) checked, no regressions\n", guarded)
	}
}

func sortedKeys(m map[string][]sample) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
