// Package epcq is a library for counting answers to existential positive
// (ep) queries on finite relational structures — a faithful, executable
// reproduction of:
//
//	Hubie Chen and Stefan Mengel.
//	"Counting Answers to Existential Positive Queries: A Complexity
//	Classification."  PODS 2016 (arXiv:1601.03240).
//
// The package exposes:
//
//   - parsing and construction of ep-queries (unions of conjunctive
//     queries with designated "liberal" variables) and structures;
//   - the production counting pipeline of the paper (Theorem 3.1 front-end
//   - the Theorem 2.11 FPT counting algorithm), executed by the layered
//     Term pool→Plan→Executor→Session engine of internal/term +
//     internal/engine: inclusion–exclusion terms intern by canonical
//     core fingerprint (counting-equivalent terms merge coefficients and
//     share compiled plans; cancelled classes never compile), queries
//     compile once to engine plans, structures materialize constraint
//     tables, bind per-node constraint orders with prefix hash indexes,
//     and memoize one count per unique term once per session, and the
//     join-count DP runs index probes on packed uint64 keys with an
//     int64 fast path, spreading independent decomposition subtrees and
//     sharded pivot tables over a bounded worker pool (bit-identical to
//     serial execution);
//   - repeated counting (Counter.Count), concurrent term evaluation
//     (Counter.CountParallel), and batched counting over many structures
//     on a bounded worker pool (Counter.CountBatch / epcq.CountBatch);
//     the worker budget comes from Counter.WithWorkers, the EPCQ_WORKERS
//     environment variable, or GOMAXPROCS, in that order;
//   - the decidable equivalence notions of Section 5 (counting
//     equivalence, semi-counting equivalence, logical equivalence);
//   - the φ⁺ translation of the equivalence theorem and both counting
//     slice reductions;
//   - the trichotomy classifier of Theorem 3.2.
//
// Quick start:
//
//	q, _ := epcq.ParseQuery("triangles(x,y,z) := E(x,y) & E(y,z) & E(z,x)")
//	b, _ := epcq.ParseStructure("E(a,b). E(b,c). E(c,a).", nil)
//	c, _ := epcq.NewCounter(q, b.Signature(), epcq.EngineFPT)
//	n, _ := c.Count(b)                                  // *big.Int
//	ns, _ := c.CountBatch([]*epcq.Structure{b, b2, b3}) // bounded worker pool
package epcq

import (
	"fmt"
	"math/big"

	"repro/internal/approx"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/count"
	"repro/internal/eptrans"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/pp"
	"repro/internal/structure"
)

// Re-exported core types.  (Aliases keep one canonical implementation in
// the internal packages while giving users stable names.)
type (
	// Query is an ep-formula with an ordered list of liberal variables;
	// counting is always over the liberal variables (Section 2.1).
	Query = logic.Query
	// Var is a query variable name.
	Var = logic.Var
	// Formula is an ep-formula node (Atom / And / Or / Exists / Truth).
	Formula = logic.Formula
	// Structure is a finite relational structure.
	Structure = structure.Structure
	// Signature is a finite relational vocabulary.
	Signature = structure.Signature
	// RelSym is a relation symbol (name + arity).
	RelSym = structure.RelSym
	// PPFormula is a prenex primitive positive formula in the pair view
	// (A, S) of Chandra–Merlin.
	PPFormula = pp.PP
	// Counter is a compiled ep-query supporting repeated counting,
	// classification, and the oracle reductions.
	Counter = core.Counter
	// Compiled is the Theorem 3.1 front-end output: normalized disjuncts,
	// φ*af, φ⁻af and φ⁺.
	Compiled = eptrans.Compiled
	// Verdict is a trichotomy classification result (Theorem 3.2).
	Verdict = classify.Verdict
	// Engine selects a pp-counting algorithm.
	Engine = count.PPEngine
	// ApproxParams configures an approximate count: the (ε, δ) target,
	// the per-component sample caps, and the RNG seed.
	ApproxParams = approx.Params
	// ApproxResult is a routed approximate count: the estimate with its
	// error bound, confidence, trichotomy case and budget telemetry.
	ApproxResult = core.ApproxResult
	// HardExactError is the typed admission-control rejection returned
	// when exact execution of a hard-classified query is refused.
	HardExactError = core.HardExactError
)

// Counting engines.
const (
	// EngineAuto chooses automatically (currently the FPT engine).
	EngineAuto = count.EngineAuto
	// EngineBrute enumerates all liberal assignments (reference).
	EngineBrute = count.EngineBrute
	// EngineProjection enumerates extendable assignments per component.
	EngineProjection = count.EngineProjection
	// EngineFPT is the Theorem 2.11 algorithm: core, ∃-component
	// predicates, join-count DP over a contract-graph tree decomposition.
	EngineFPT = count.EngineFPT
	// EngineFPTNoCore is EngineFPT without the core step (ablation).
	EngineFPTNoCore = count.EngineFPTNoCore
)

// Trichotomy cases (Theorem 3.2).
const (
	CaseFPT         = classify.CaseFPT
	CaseClique      = classify.CaseClique
	CaseSharpClique = classify.CaseSharpClique
)

// ParseQuery parses the concrete query syntax, e.g.
//
//	phi(w,x,y,z) := E(x,y) & (E(w,x) | exists u. E(y,u) & E(u,u))
//
// A bare formula is also accepted; its liberal variables are then its free
// variables in lexicographic order.
func ParseQuery(src string) (Query, error) { return parser.ParseQuery(src) }

// MustParseQuery is ParseQuery panicking on error.
func MustParseQuery(src string) Query { return parser.MustQuery(src) }

// ParseStructure parses a fact file such as
//
//	universe a, b, c.
//	E(a,b). E(b,c).
//
// If sig is nil, relation arities are inferred from the facts.
func ParseStructure(src string, sig *Signature) (*Structure, error) {
	return parser.ParseStructure(src, sig)
}

// MustParseStructure is ParseStructure panicking on error.
func MustParseStructure(src string, sig *Signature) *Structure {
	return parser.MustStructure(src, sig)
}

// NewSignature builds a signature from relation symbols.
func NewSignature(rels ...RelSym) (*Signature, error) {
	return structure.NewSignature(rels...)
}

// NewStructure returns an empty structure over sig (add facts with
// AddFact).
func NewStructure(sig *Signature) *Structure { return structure.New(sig) }

// NewCounter compiles a query for repeated counting.  A nil signature is
// inferred from the query.
func NewCounter(q Query, sig *Signature, engine Engine) (*Counter, error) {
	return core.NewCounter(q, sig, engine)
}

// Count is the one-shot convenience: compile and count in one call.
// For repeated counting over the same query, use NewCounter.
func Count(q Query, b *Structure) (*big.Int, error) {
	c, err := core.NewCounter(q, b.Signature(), count.EngineFPT)
	if err != nil {
		return nil, err
	}
	return c.Count(b)
}

// CountApprox is the one-shot approximate convenience: compile, route
// each term through the Theorem 3.2 trichotomy, and count — FPT terms
// exactly, hard terms with the importance-sampling estimator at the
// (ε, δ) target (zero values select the defaults 0.1, 0.05).  The same
// ApproxParams.Seed always yields the same estimate.  For repeated
// counting, hold a Counter and call its CountApprox method.
func CountApprox(q Query, b *Structure, prm ApproxParams) (ApproxResult, error) {
	c, err := core.NewCounter(q, b.Signature(), count.EngineFPT)
	if err != nil {
		return ApproxResult{}, err
	}
	return c.CountApprox(b, prm)
}

// CountBatch compiles the query once and counts its answers on every
// structure of the batch, spreading the structures over a bounded worker
// pool (at most GOMAXPROCS goroutines).  Result i corresponds to bs[i].
// For repeated batches over the same query, hold a Counter and call its
// CountBatch method.
func CountBatch(q Query, bs []*Structure) ([]*big.Int, error) {
	if len(bs) == 0 {
		return nil, nil
	}
	c, err := core.NewCounter(q, bs[0].Signature(), count.EngineFPT)
	if err != nil {
		return nil, err
	}
	return c.CountBatch(bs)
}

// Answer is one satisfying assignment of the liberal variables, with
// values given as element names aligned with the query head.
type Answer = count.Answer

// Answers collects up to limit answers of the query on b (limit ≤ 0 means
// all).  For streaming or early termination use Counter.Answers.
func Answers(q Query, b *Structure, limit int) ([]Answer, error) {
	c, err := core.NewCounter(q, b.Signature(), count.EngineFPT)
	if err != nil {
		return nil, err
	}
	var out []Answer
	_, err = c.Answers(b, limit, func(a Answer) bool {
		out = append(out, append(Answer(nil), a...))
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CountHomomorphisms counts all homomorphisms A → B via the join-count
// dynamic program — the #HOM problem of Dalmau–Jonsson that the paper's
// trichotomy generalizes; FPT when A has bounded treewidth.
func CountHomomorphisms(a, b *Structure) (*big.Int, error) {
	return count.Homomorphisms(a, b)
}

// InferSignature derives the signature used by a query's atoms.
func InferSignature(q Query) (*Signature, error) {
	return eptrans.InferStructSignature(q)
}

// Compile runs the Theorem 3.1 front-end: normalization, φ*af with
// counting-equivalence cancellation, sentence-entailment filtering, φ⁺.
func Compile(q Query, sig *Signature) (*Compiled, error) {
	if sig == nil {
		var err error
		sig, err = eptrans.InferStructSignature(q)
		if err != nil {
			return nil, err
		}
	}
	return eptrans.Compile(q, sig)
}

// asSinglePP converts a pp-query (one disjunct) to the pair view.
func asSinglePP(q Query, sig *Signature) (PPFormula, error) {
	if sig == nil {
		var err error
		sig, err = eptrans.InferStructSignature(q)
		if err != nil {
			return PPFormula{}, err
		}
	}
	ds := q.Disjuncts()
	if len(ds) != 1 {
		return PPFormula{}, fmt.Errorf("epcq: query %v is not primitive positive (%d disjuncts)", q.Name, len(ds))
	}
	return pp.FromDisjunct(sig, q.Lib, ds[0])
}

// ToPP converts a primitive positive query (no disjunction) into the
// structure-pair view.
func ToPP(q Query, sig *Signature) (PPFormula, error) { return asSinglePP(q, sig) }

// CountingEquivalent decides whether two pp-queries have the same number
// of answers on every finite structure (Theorem 5.4: equivalent to
// renaming equivalence, hence decidable).  Both queries must be primitive
// positive and share a signature; pass nil to infer a joint signature.
func CountingEquivalent(q1, q2 Query, sig *Signature) (bool, error) {
	var err error
	if sig == nil {
		if sig, err = jointSignature(q1, q2); err != nil {
			return false, err
		}
	}
	p1, err := asSinglePP(q1, sig)
	if err != nil {
		return false, err
	}
	p2, err := asSinglePP(q2, sig)
	if err != nil {
		return false, err
	}
	return pp.CountingEquivalent(p1, p2)
}

// SemiCountingEquivalent decides Definition 5.6 via Theorem 5.9 (counting
// equivalence of the φ̂'s).
func SemiCountingEquivalent(q1, q2 Query, sig *Signature) (bool, error) {
	var err error
	if sig == nil {
		if sig, err = jointSignature(q1, q2); err != nil {
			return false, err
		}
	}
	p1, err := asSinglePP(q1, sig)
	if err != nil {
		return false, err
	}
	p2, err := asSinglePP(q2, sig)
	if err != nil {
		return false, err
	}
	return pp.SemiCountingEquivalent(p1, p2)
}

// LogicallyEquivalent decides logical equivalence of two pp-queries with
// identical liberal variables (Chandra–Merlin, Theorem 2.3).
func LogicallyEquivalent(q1, q2 Query, sig *Signature) (bool, error) {
	var err error
	if sig == nil {
		if sig, err = jointSignature(q1, q2); err != nil {
			return false, err
		}
	}
	p1, err := asSinglePP(q1, sig)
	if err != nil {
		return false, err
	}
	p2, err := asSinglePP(q2, sig)
	if err != nil {
		return false, err
	}
	return pp.LogicallyEquivalent(p1, p2)
}

func jointSignature(qs ...Query) (*Signature, error) {
	arities := map[string]int{}
	for _, q := range qs {
		m, err := logic.InferSignature(q.F)
		if err != nil {
			return nil, err
		}
		for name, ar := range m {
			if prev, ok := arities[name]; ok && prev != ar {
				return nil, fmt.Errorf("epcq: relation %s used with arities %d and %d", name, prev, ar)
			}
			arities[name] = ar
		}
	}
	rels := make([]RelSym, 0, len(arities))
	for name, ar := range arities {
		rels = append(rels, RelSym{Name: name, Arity: ar})
	}
	return structure.NewSignature(rels...)
}

// Classify compiles the query and classifies its φ⁺ against the width
// bounds (Theorem 3.2): CaseFPT if core and contract treewidths stay
// within (wCore, wContract), CaseClique if only the contract width does,
// CaseSharpClique otherwise.
func Classify(q Query, sig *Signature, wCore, wContract int) (Verdict, error) {
	if sig == nil {
		var err error
		sig, err = eptrans.InferStructSignature(q)
		if err != nil {
			return Verdict{}, err
		}
	}
	v, _, err := classify.ClassifyEP(q, sig, wCore, wContract)
	return v, err
}

// AnalyzeQueryFamily measures core/contract treewidth growth of a
// parameterized query family and reports the trichotomy case the trends
// imply.
func AnalyzeQueryFamily(gen func(k int) Query, sig *Signature, ks []int) (classify.FamilyVerdict, error) {
	return classify.AnalyzeFamily(gen, sig, ks)
}
