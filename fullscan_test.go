package epcq_test

import (
	"testing"

	epcq "repro"
	"repro/internal/count"
	"repro/internal/structure"
	"repro/internal/workload"
)

// The whole counting pipeline — ep compilation (inclusion–exclusion with
// canonical interning), the ie signed sum, the union counters, batch and
// parallel counting — must never touch the deprecated Tuples/TuplesWith
// full-scan shims.  This extends the per-layer zero-full-scan tests
// (relation store, session materialization) end to end across the
// ie/union paths.
func TestZeroFullScansAcrossIEAndUnionPaths(t *testing.T) {
	q := epcq.MustParseQuery(`u(w,x,y,z) := E(x,y) & E(y,z)
		| E(y,z) & E(z,w)
		| E(z,w) & E(w,x)
		| E(w,x) & E(x,y)
		| exists a, b, c. E(a,b) & E(b,c) & E(c,a)`)
	bs := make([]*structure.Structure, 4)
	for i := range bs {
		bs[i] = workload.RandomStructure(workload.EdgeSig(), 8, 0.25, int64(i))
	}

	before := structure.FullScanCount()

	c, err := epcq.NewCounter(q, nil, epcq.EngineFPT)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Count(bs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CountParallel(bs[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CountBatch(bs); err != nil {
		t.Fatal(err)
	}
	// The union counters: direct enumeration and the pooled IE pipeline.
	if _, err := count.EPUnion(c.Compiled.Disjuncts, bs[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := count.EPUnionTerms(c.Compiled.Disjuncts, bs[2], count.EngineFPT, nil); err != nil {
		t.Fatal(err)
	}

	if d := structure.FullScanCount() - before; d != 0 {
		t.Fatalf("ie/union counting paths performed %d deprecated full scans, want 0", d)
	}
}
