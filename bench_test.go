// Benchmarks: one family per reproduction experiment (DESIGN.md §4).
// The paper has no measurement tables, so these benches regenerate the
// executable content of its worked examples and theorems; `cmd/epbench`
// prints the corresponding human-readable tables.
package epcq_test

import (
	"math/big"
	"testing"

	epcq "repro"
	"repro/internal/cliquered"
	"repro/internal/core"
	"repro/internal/count"
	"repro/internal/engine"
	"repro/internal/eptrans"
	"repro/internal/graph"
	"repro/internal/ie"
	"repro/internal/parser"
	"repro/internal/pp"
	"repro/internal/structure"
	"repro/internal/tw"
	"repro/internal/workload"
)

func mustCompile(b *testing.B, src string) *eptrans.Compiled {
	b.Helper()
	q := parser.MustQuery(src)
	sig, err := eptrans.InferStructSignature(q)
	if err != nil {
		b.Fatal(err)
	}
	c, err := eptrans.Compile(q, sig)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func fptCounter(p pp.PP, s *structure.Structure) (*big.Int, error) {
	return count.PP(p, s, count.EngineFPT)
}

// --- E1: Example 4.1 -----------------------------------------------------

func BenchmarkE1_Example41_Pipeline(b *testing.B) {
	c := mustCompile(b, "phi(w,x,y,z) := E(x,y) & (E(w,x) | E(y,z) & E(z,z))")
	bs := workload.RandomStructure(workload.EdgeSig(), 12, 0.3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eptrans.CountEPViaPP(c, bs, fptCounter); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1_Example41_DirectEnumeration(b *testing.B) {
	q := parser.MustQuery("phi(w,x,y,z) := E(x,y) & (E(w,x) | E(y,z) & E(z,z))")
	bs := workload.RandomStructure(workload.EdgeSig(), 12, 0.3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := count.EPDirect(q, bs); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E2: Example 4.2 cancellation ---------------------------------------

func example42Terms(b *testing.B) (raw, merged []ie.Term) {
	b.Helper()
	lib := []epcq.Var{"w", "x", "y", "z"}
	var ds []pp.PP
	for _, src := range []string{
		"p(w,x,y,z) := E(x,y) & E(y,z)",
		"p(w,x,y,z) := E(z,w) & E(w,x)",
		"p(w,x,y,z) := E(w,x) & E(x,y)",
	} {
		q := parser.MustQuery(src)
		p, err := pp.FromDisjunct(workload.EdgeSig(), lib, q.Disjuncts()[0])
		if err != nil {
			b.Fatal(err)
		}
		ds = append(ds, p)
	}
	raw, err := ie.RawTerms(ds)
	if err != nil {
		b.Fatal(err)
	}
	merged, err = ie.Merge(raw)
	if err != nil {
		b.Fatal(err)
	}
	return raw, merged
}

func BenchmarkE2_Cancellation_RawTerms(b *testing.B) {
	raw, _ := example42Terms(b)
	bs := workload.RandomStructure(workload.EdgeSig(), 10, 0.3, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ie.Count(raw, bs, fptCounter); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2_Cancellation_MergedTerms(b *testing.B) {
	_, merged := example42Terms(b)
	bs := workload.RandomStructure(workload.EdgeSig(), 10, 0.3, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ie.Count(merged, bs, fptCounter); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2_Cancellation_BuildPhiStar(b *testing.B) {
	lib := []epcq.Var{"w", "x", "y", "z"}
	var ds []pp.PP
	for _, src := range []string{
		"p(w,x,y,z) := E(x,y) & E(y,z)",
		"p(w,x,y,z) := E(z,w) & E(w,x)",
		"p(w,x,y,z) := E(w,x) & E(x,y)",
	} {
		q := parser.MustQuery(src)
		p, _ := pp.FromDisjunct(workload.EdgeSig(), lib, q.Disjuncts()[0])
		ds = append(ds, p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ie.PhiStar(ds); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E3: Example 4.3 Vandermonde recovery --------------------------------

func BenchmarkE3_Vandermonde_BackwardReduction(b *testing.B) {
	c := mustCompile(b, "phi(w,x,y,z) := E(x,y) & (E(w,x) | E(y,z) & E(z,z))")
	bs := workload.RandomStructure(workload.EdgeSig(), 3, 0.45, 3)
	oracle := func(y *structure.Structure) (*big.Int, error) {
		return eptrans.CountEPViaPP(c, y, fptCounter)
	}
	psi := c.Plus[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eptrans.CountPPViaEP(c, psi, bs, oracle); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E4/E5: equivalence decisions ----------------------------------------

func BenchmarkE4_CountingEquiv_Decide(b *testing.B) {
	lib := []epcq.Var{"a", "b"}
	q1 := parser.MustQuery("p(a,b) := exists m. E(a,m) & E(m,b)")
	q2 := parser.MustQuery("p(a,b) := exists u. E(b,u) & E(u,a)")
	p1, _ := pp.FromDisjunct(workload.EdgeSig(), lib, q1.Disjuncts()[0])
	p2, _ := pp.FromDisjunct(workload.EdgeSig(), lib, q2.Disjuncts()[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pp.CountingEquivalent(p1, p2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5_SemiCountingEquiv_Decide(b *testing.B) {
	sig := structure.MustSignature(
		structure.RelSym{Name: "E", Arity: 2},
		structure.RelSym{Name: "F", Arity: 1},
	)
	lib := []epcq.Var{"x", "y"}
	q1 := parser.MustQuery("p(x,y) := E(x,y)")
	q2 := parser.MustQuery("p(x,y) := exists z. E(x,y) & F(z)")
	p1, _ := pp.FromDisjunct(sig, lib, q1.Disjuncts()[0])
	p2, _ := pp.FromDisjunct(sig, lib, q2.Disjuncts()[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pp.SemiCountingEquivalent(p1, p2); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6: FPT scaling ------------------------------------------------------

func benchPathOnER(b *testing.B, n int, engine count.PPEngine) {
	b.Helper()
	q := workload.PathQuery(4)
	ds := q.Disjuncts()
	p, err := pp.FromDisjunct(workload.EdgeSig(), q.Lib, ds[0])
	if err != nil {
		b.Fatal(err)
	}
	g := workload.ER(n, 4.0/float64(n), int64(n))
	bs := workload.GraphStructure(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := count.PP(p, bs, engine); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6_FPTScaling_FPT_N40(b *testing.B)   { benchPathOnER(b, 40, count.EngineFPT) }
func BenchmarkE6_FPTScaling_FPT_N80(b *testing.B)   { benchPathOnER(b, 80, count.EngineFPT) }
func BenchmarkE6_FPTScaling_FPT_N160(b *testing.B)  { benchPathOnER(b, 160, count.EngineFPT) }
func BenchmarkE6_FPTScaling_Proj_N80(b *testing.B)  { benchPathOnER(b, 80, count.EngineProjection) }
func BenchmarkE6_FPTScaling_Brute_N12(b *testing.B) { benchPathOnER(b, 12, count.EngineBrute) }

// --- E7: clique hardness ---------------------------------------------------

func benchCliqueCount(b *testing.B, k int) {
	b.Helper()
	g := workload.PlantedClique(20, 0.5, 6, 123)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cliquered.CountCliquesViaQuery(g, k, count.EngineProjection); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7_CliqueHardness_K2(b *testing.B) { benchCliqueCount(b, 2) }
func BenchmarkE7_CliqueHardness_K3(b *testing.B) { benchCliqueCount(b, 3) }
func BenchmarkE7_CliqueHardness_K4(b *testing.B) { benchCliqueCount(b, 4) }
func BenchmarkE7_CliqueHardness_K5(b *testing.B) { benchCliqueCount(b, 5) }

func BenchmarkE7_CliqueHardness_NativeK4(b *testing.B) {
	g := workload.PlantedClique(20, 0.5, 6, 123)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.CountCliques(4)
	}
}

// --- E8: interreduction end-to-end -----------------------------------------

func BenchmarkE8_EquivalenceTheorem_Forward(b *testing.B) {
	c := mustCompile(b, `th(w,x,y,z) := E(x,y) & E(y,z)
		| E(z,w) & E(w,x)
		| E(w,x) & E(x,y)
		| exists a1,b1,c1,d1. E(a1,b1) & E(b1,c1) & E(c1,d1)`)
	bs := workload.RandomStructure(workload.EdgeSig(), 8, 0.25, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eptrans.CountEPViaPP(c, bs, fptCounter); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8_EquivalenceTheorem_Compile(b *testing.B) {
	q := parser.MustQuery(`th(w,x,y,z) := E(x,y) & E(y,z)
		| E(z,w) & E(w,x)
		| E(w,x) & E(x,y)
		| exists a1,b1,c1,d1. E(a1,b1) & E(b1,c1) & E(c1,d1)`)
	sig := workload.EdgeSig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eptrans.Compile(q, sig); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E9: classification ------------------------------------------------------

func BenchmarkE9_Classify_PathFamily(b *testing.B) {
	q := workload.PathQuery(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := epcq.Classify(q, workload.EdgeSig(), 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE9_Classify_CliqueFamily(b *testing.B) {
	q := workload.CliqueQuery(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := epcq.Classify(q, workload.EdgeSig(), 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- A1/A4: engine ablations ---------------------------------------------

func BenchmarkA1_Engine_FPT(b *testing.B)        { benchPathOnER(b, 60, count.EngineFPT) }
func BenchmarkA1_Engine_Projection(b *testing.B) { benchPathOnER(b, 60, count.EngineProjection) }

func benchCoreAblation(b *testing.B, engine count.PPEngine) {
	b.Helper()
	q := parser.MustQuery("q(x) := exists u, v, w. E(x,u) & E(x,v) & E(x,w)")
	p, err := pp.FromDisjunct(workload.EdgeSig(), q.Lib, q.Disjuncts()[0])
	if err != nil {
		b.Fatal(err)
	}
	g := workload.ER(40, 0.15, 9)
	bs := workload.GraphStructure(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := count.PP(p, bs, engine); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkA4_FPT_WithCore(b *testing.B)    { benchCoreAblation(b, count.EngineFPT) }
func BenchmarkA4_FPT_WithoutCore(b *testing.B) { benchCoreAblation(b, count.EngineFPTNoCore) }

// --- A5: treewidth ----------------------------------------------------------

func benchTreewidth(b *testing.B, exact bool) {
	b.Helper()
	gs := make([]*graph.Graph, 8)
	for i := range gs {
		gs[i] = workload.ER(14, 0.3, int64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := gs[i%len(gs)]
		if exact {
			tw.Treewidth(g)
		} else {
			tw.HeuristicDecomposition(g)
		}
	}
}

func BenchmarkA5_Treewidth_Exact(b *testing.B)     { benchTreewidth(b, true) }
func BenchmarkA5_Treewidth_Heuristic(b *testing.B) { benchTreewidth(b, false) }

// --- public API round trip ---------------------------------------------------

func BenchmarkAPI_OneShotCount(b *testing.B) {
	q := epcq.MustParseQuery("common(a,c) := exists m. E(a,m) & E(m,c)")
	g := workload.ER(50, 0.1, 77)
	bs := workload.GraphStructure(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := epcq.Count(q, bs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAPI_CompiledCount(b *testing.B) {
	q := epcq.MustParseQuery("common(a,c) := exists m. E(a,m) & E(m,c)")
	g := workload.ER(50, 0.1, 77)
	bs := workload.GraphStructure(g)
	c, err := epcq.NewCounter(q, bs.Signature(), epcq.EngineFPT)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Count(bs); err != nil {
			b.Fatal(err)
		}
	}
}

// --- parallel counting --------------------------------------------------

func BenchmarkCounter_SerialTerms(b *testing.B) {
	benchCounterParallel(b, false)
}

func BenchmarkCounter_ParallelTerms(b *testing.B) {
	benchCounterParallel(b, true)
}

func benchCounterParallel(b *testing.B, parallel bool) {
	b.Helper()
	q := parser.MustQuery(`q(w,x,y,z) := E(x,y) & E(y,z) | E(z,w) & E(w,x) | E(x,w) & E(y,w)`)
	c, err := core.NewCounter(q, workload.EdgeSig(), count.EngineFPT)
	if err != nil {
		b.Fatal(err)
	}
	bs := workload.GraphStructure(workload.ER(30, 0.2, 21))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if parallel {
			_, err = c.CountParallel(bs)
		} else {
			_, err = c.Count(bs)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- JoinCount: executor hot path on medium instances --------------------
//
// Pure #HOM workloads (every pattern variable liberal): the count is
// exactly the join-count DP over the contract-graph decomposition, so
// these benches isolate the executor — packed keys, int64 fast path,
// session-cached constraint tables.

func pathStructure(k int) *structure.Structure {
	a := structure.New(workload.EdgeSig())
	for i := 0; i <= k; i++ {
		a.EnsureElem("x" + string(rune('0'+i/10)) + string(rune('0'+i%10)))
	}
	for i := 0; i < k; i++ {
		_ = a.AddTuple("E", i, i+1)
	}
	return a
}

func cycleStructure(k int) *structure.Structure {
	a := structure.New(workload.EdgeSig())
	for i := 0; i < k; i++ {
		a.EnsureElem("c" + string(rune('0'+i/10)) + string(rune('0'+i%10)))
	}
	for i := 0; i < k; i++ {
		_ = a.AddTuple("E", i, (i+1)%k)
	}
	return a
}

func benchJoinCountHom(b *testing.B, pattern *structure.Structure, n int, density float64) {
	b.Helper()
	bs := workload.GraphStructure(workload.ER(n, density, int64(n)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := count.Homomorphisms(pattern, bs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoinCount_Path6_N120(b *testing.B) {
	benchJoinCountHom(b, pathStructure(6), 120, 4.0/120)
}
func BenchmarkJoinCount_Path10_N200(b *testing.B) {
	benchJoinCountHom(b, pathStructure(10), 200, 4.0/200)
}
func BenchmarkJoinCount_Cycle6_N120(b *testing.B) {
	benchJoinCountHom(b, cycleStructure(6), 120, 6.0/120)
}

// --- JoinCount: parallel executor ----------------------------------------
//
// Same pure #HOM workloads with the worker budget pinned: _W1 rows run
// the strictly serial DP, _WMax rows let subtree workers and pivot
// sharding use every core (identical results; on a 1-core host the pair
// measures synchronization overhead instead of speedup).  The spider
// pattern's decomposition branches at the body, exercising the
// subtree-parallel path on multi-core hosts.

// spiderStructure is a body vertex with legs rays of length legLen each:
// its contract-graph decomposition is a tree with legs independent
// subtrees.
func spiderStructure(legs, legLen int) *structure.Structure {
	a := structure.New(workload.EdgeSig())
	body := a.EnsureElem("b")
	for l := 0; l < legs; l++ {
		prev := body
		for i := 0; i < legLen; i++ {
			v := a.EnsureElem("s" + string(rune('a'+l)) + string(rune('0'+i)))
			_ = a.AddTuple("E", prev, v)
			prev = v
		}
	}
	return a
}

func benchJoinCountHomWorkers(b *testing.B, pattern *structure.Structure, n int, density float64, workers int) {
	b.Helper()
	restore := engine.SetDefaultWorkers(workers)
	defer restore()
	bs := workload.GraphStructure(workload.ER(n, density, int64(n)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := count.Homomorphisms(pattern, bs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoinCountPar_Path10_N400_W1(b *testing.B) {
	benchJoinCountHomWorkers(b, pathStructure(10), 400, 5.0/400, 1)
}
func BenchmarkJoinCountPar_Path10_N400_WMax(b *testing.B) {
	benchJoinCountHomWorkers(b, pathStructure(10), 400, 5.0/400, 0)
}
func BenchmarkJoinCountPar_Spider3x3_N300_W1(b *testing.B) {
	benchJoinCountHomWorkers(b, spiderStructure(3, 3), 300, 5.0/300, 1)
}
func BenchmarkJoinCountPar_Spider3x3_N300_WMax(b *testing.B) {
	benchJoinCountHomWorkers(b, spiderStructure(3, 3), 300, 5.0/300, 0)
}
func BenchmarkJoinCountPar_Cycle6_N200_W1(b *testing.B) {
	benchJoinCountHomWorkers(b, cycleStructure(6), 200, 6.0/200, 1)
}
func BenchmarkJoinCountPar_Cycle6_N200_WMax(b *testing.B) {
	benchJoinCountHomWorkers(b, cycleStructure(6), 200, 6.0/200, 0)
}

// --- union-heavy term dedup -----------------------------------------------
//
// Four overlapping free disjuncts (the rotations of a directed 2-path
// over cyclic liberal variables) plus a sentence disjunct: the 2⁴−1 raw
// inclusion–exclusion terms collapse to a handful of canonical cores, so
// these rows are dominated by how well the pipeline dedupes — compile
// measures the pool (raw-stage interning saves corings), count measures
// the per-session count memo on repeated/batched counting.

const unionDedupSrc = `u(w,x,y,z) := E(x,y) & E(y,z)
	| E(y,z) & E(z,w)
	| E(z,w) & E(w,x)
	| E(w,x) & E(x,y)`

func BenchmarkUnionDedup_Compile(b *testing.B) {
	q := parser.MustQuery(unionDedupSrc)
	sig := workload.EdgeSig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewCounter(q, sig, count.EngineFPT); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnionDedup_Count(b *testing.B) {
	q := parser.MustQuery(unionDedupSrc)
	c, err := core.NewCounter(q, workload.EdgeSig(), count.EngineFPT)
	if err != nil {
		b.Fatal(err)
	}
	bs := workload.GraphStructure(workload.ER(30, 0.15, 11))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Count(bs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnionDedup_CountBatch8(b *testing.B) {
	q := parser.MustQuery(unionDedupSrc)
	c, err := core.NewCounter(q, workload.EdgeSig(), count.EngineFPT)
	if err != nil {
		b.Fatal(err)
	}
	batch := make([]*structure.Structure, 8)
	for i := range batch {
		batch[i] = workload.GraphStructure(workload.ER(24, 0.18, int64(100+i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.CountBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnionDedup_EPUnionTerms(b *testing.B) {
	q := parser.MustQuery(unionDedupSrc)
	sig := workload.EdgeSig()
	var ds []pp.PP
	for _, d := range q.Disjuncts() {
		p, err := pp.FromDisjunct(sig, q.Lib, d)
		if err != nil {
			b.Fatal(err)
		}
		ds = append(ds, p)
	}
	bs := workload.GraphStructure(workload.ER(24, 0.18, 5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := count.EPUnionTerms(ds, bs, count.EngineFPT, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- batched counting -----------------------------------------------------

func BenchmarkCounter_CountBatch16(b *testing.B) {
	q := parser.MustQuery(`q(w,x,y,z) := E(x,y) & E(y,z) | E(z,w) & E(w,x) | E(x,w) & E(y,w)`)
	c, err := core.NewCounter(q, workload.EdgeSig(), count.EngineFPT)
	if err != nil {
		b.Fatal(err)
	}
	batch := make([]*structure.Structure, 16)
	for i := range batch {
		batch[i] = workload.GraphStructure(workload.ER(24, 0.2, int64(i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.CountBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
}
