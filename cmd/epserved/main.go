// Command epserved serves ep-query counting over HTTP/JSON: a named-
// structure registry with streaming fact appends, compiled-query
// caching with cross-client plan sharing, batched counting on bounded
// worker pools, admission control, per-request deadlines, and a /stats
// telemetry endpoint.  See internal/serve for the API and
// examples/service for an end-to-end walkthrough.
//
// Usage:
//
//	epserved -addr :8080
//	epserved -addr :8080 -workers 8 -max-inflight 128 -timeout 10s
//	epserved -load social=social.facts -load web=web.facts
//
// Endpoints:
//
//	POST /structures              {"name":..., "facts":..., "signature":[{"name":"E","arity":2}]?}
//	GET  /structures              list registered structures
//	GET  /structures/{name}       one structure's metadata
//	POST /structures/{name}/facts {"facts": ...}   append (atomic, invalidates sessions)
//	POST /count                   {"query":..., "structure":..., "engine"?, "timeout_ms"?}
//	POST /countBatch              {"query":..., "structures":[...], ...}
//	GET  /stats                   admission + per-query + session telemetry
//	GET  /healthz                 liveness
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes and
// in-flight requests drain (up to -drain).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve"
)

// loadSpec is one -load argument: a structure to preload at startup.
type loadSpec struct {
	name, path string
}

// parseLoadSpec splits "name=path".
func parseLoadSpec(s string) (loadSpec, error) {
	name, path, ok := strings.Cut(s, "=")
	if !ok || name == "" || path == "" {
		return loadSpec{}, fmt.Errorf("-load wants name=factfile, got %q", s)
	}
	return loadSpec{name: name, path: path}, nil
}

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "worker budget per compiled query (0 = EPCQ_WORKERS, else GOMAXPROCS)")
		inflight  = flag.Int("max-inflight", 0, "max concurrently executing counting requests (0 = 64); excess requests get 503")
		timeout   = flag.Duration("timeout", 0, "per-request counting deadline (0 = 30s); requests may lower it via timeout_ms")
		queryCap  = flag.Int("query-cache", 0, "compiled-query cache capacity (0 = 256)")
		drain     = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget for in-flight requests")
		loadSpecs []loadSpec
	)
	flag.Func("load", "preload a structure at startup as name=factfile (repeatable)", func(s string) error {
		ls, err := parseLoadSpec(s)
		if err != nil {
			return err
		}
		loadSpecs = append(loadSpecs, ls)
		return nil
	})
	flag.Parse()

	if err := run(*addr, *workers, *inflight, *timeout, *queryCap, *drain, loadSpecs); err != nil {
		fmt.Fprintln(os.Stderr, "epserved:", err)
		os.Exit(1)
	}
}

func run(addr string, workers, inflight int, timeout time.Duration, queryCap int, drain time.Duration, loads []loadSpec) error {
	srv := serve.New(serve.Config{
		Addr:           addr,
		Workers:        workers,
		MaxInFlight:    inflight,
		RequestTimeout: timeout,
		QueryCacheCap:  queryCap,
	})
	for _, ls := range loads {
		facts, err := os.ReadFile(ls.path)
		if err != nil {
			return err
		}
		info, err := srv.Registry().CreateStructure(ls.name, string(facts), nil)
		if err != nil {
			return fmt.Errorf("preload %s: %w", ls.name, err)
		}
		fmt.Fprintf(os.Stderr, "epserved: loaded %s (%d elements, %d tuples)\n", info.Name, info.Size, info.Tuples)
	}
	if err := srv.Start(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "epserved: listening on %s\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "epserved: shutting down (draining in-flight requests)")
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	return srv.Shutdown(ctx)
}
