// Command epserved serves ep-query counting over HTTP/JSON: a named-
// structure registry with streaming fact appends, compiled-query
// caching with cross-client plan sharing, batched counting on bounded
// worker pools, admission control, per-request deadlines, and a /stats
// telemetry endpoint.  See internal/serve for the API and
// examples/service for an end-to-end walkthrough.
//
// Usage:
//
//	epserved -addr :8080
//	epserved -addr :8080 -workers 8 -max-inflight 128 -timeout 10s
//	epserved -load social=social.facts -load web=web.facts
//	epserved -data-dir /var/lib/epserved -fsync always
//	epserved -router http://shard0:8080,http://shard1:8080 -replicas 2
//
// Endpoints:
//
//	POST /structures              {"name":..., "facts":..., "signature":[{"name":"E","arity":2}]?}
//	GET  /structures              list registered structures
//	GET  /structures/{name}       one structure's metadata
//	POST /structures/{name}/facts {"facts":..., "batch_id"?}   append (atomic, idempotent per batch_id)
//	POST /count                   {"query":..., "structure":..., "engine"?, "timeout_ms"?}
//	POST /countBatch              {"query":..., "structures":[...], ...}
//	GET  /stats                   admission + per-query + session telemetry
//	GET  /healthz                 liveness ("recovering" 503 vs "ready" 200)
//
// With -data-dir, every structure creation and append batch is
// write-ahead logged (fsynced per -fsync) and periodically compacted
// into columnar snapshots; on start the directory is recovered —
// snapshots load, the WAL tail replays, torn or corrupt suffixes are
// truncated — before the listener accepts.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes,
// in-flight requests drain (up to -drain), and the durability store
// flushes and closes after the last append writer finishes.
//
// With -router the process is a cluster coordinator instead of a shard:
// it serves the same API but owns no structures itself, routing every
// request over the comma-separated shard list by consistent hashing
// with -replicas-way replication, scatter-gather batch counting, and
// partitioned-structure recombination (see internal/cluster).  -load,
// -data-dir and the shard-local tuning flags do not apply in router
// mode.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
)

// loadSpec is one -load argument: a structure to preload at startup.
type loadSpec struct {
	name, path string
}

// parseLoadSpec splits "name=path".
func parseLoadSpec(s string) (loadSpec, error) {
	name, path, ok := strings.Cut(s, "=")
	if !ok || name == "" || path == "" {
		return loadSpec{}, fmt.Errorf("-load wants name=factfile, got %q", s)
	}
	return loadSpec{name: name, path: path}, nil
}

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "worker budget per compiled query (0 = EPCQ_WORKERS, else GOMAXPROCS)")
		inflight  = flag.Int("max-inflight", 0, "max concurrently executing counting requests (0 = 64); excess requests get 503")
		timeout   = flag.Duration("timeout", 0, "per-request counting deadline (0 = 30s); requests may lower it via timeout_ms")
		queryCap  = flag.Int("query-cache", 0, "compiled-query cache capacity (0 = 256)")
		drain     = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget for in-flight requests")
		dataDir   = flag.String("data-dir", "", "durability directory (WAL + snapshots); empty = in-memory only")
		fsync     = flag.String("fsync", "batch", "WAL sync policy with -data-dir: always | batch | never")
		router    = flag.String("router", "", "run as a cluster coordinator over this comma-separated shard URL list instead of serving structures locally")
		replicas  = flag.Int("replicas", 1, "router mode: replication factor (structures live on this many ring successors)")
		vnodes    = flag.Int("vnodes", 0, "router mode: virtual nodes per shard on the hash ring (0 = 64)")
		maxIdle   = flag.Int("max-idle-per-host", 0, "router mode: pooled keep-alive connections per shard for scatter-gather fan-out (0 = 32)")
		hardExact = flag.Int("hard-exact-limit", 0, "reject exact-mode counting of #W[1]-hard queries on structures above this many tuples with 422; clients should retry with mode=approx (0 = no limit)")
		loadSpecs []loadSpec
	)
	flag.Func("load", "preload a structure at startup as name=factfile (repeatable)", func(s string) error {
		ls, err := parseLoadSpec(s)
		if err != nil {
			return err
		}
		loadSpecs = append(loadSpecs, ls)
		return nil
	})
	flag.Parse()

	var err error
	if *router != "" {
		if *hardExact != 0 {
			fmt.Fprintln(os.Stderr, "epserved: -hard-exact-limit does not apply in router mode (shards enforce admission); set it on the shard processes")
			os.Exit(1)
		}
		err = runRouter(*addr, *router, *replicas, *vnodes, *maxIdle, *timeout, *drain, *dataDir, loadSpecs)
	} else {
		err = run(*addr, *workers, *inflight, *timeout, *queryCap, *drain, *dataDir, *fsync, *hardExact, loadSpecs)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "epserved:", err)
		os.Exit(1)
	}
}

// runRouter starts the process as a cluster coordinator over the given
// shard fleet.  Shard-local flags are rejected rather than silently
// ignored: a router holds no structures and no durability store.
func runRouter(addr, shardList string, replicas, vnodes, maxIdle int, timeout, drain time.Duration, dataDir string, loads []loadSpec) error {
	if dataDir != "" {
		return fmt.Errorf("-data-dir does not apply in router mode (shards own durability); run it on the shard processes")
	}
	if len(loads) > 0 {
		return fmt.Errorf("-load does not apply in router mode; preload through the API so creates replicate")
	}
	var shards []string
	for _, s := range strings.Split(shardList, ",") {
		if s = strings.TrimSpace(s); s != "" {
			shards = append(shards, s)
		}
	}
	co, err := cluster.New(cluster.Config{
		Shards:              shards,
		Replicas:            replicas,
		VNodes:              vnodes,
		MaxIdleConnsPerHost: maxIdle,
		RequestTimeout:      timeout,
		Addr:                addr,
	})
	if err != nil {
		return err
	}
	if err := co.Start(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "epserved: routing %d shards (replicas=%d, vnodes=%d), listening on %s\n",
		len(shards), co.Replicas(), co.Ring().VNodes(), co.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "epserved: router shutting down (draining in-flight requests)")
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	return co.Shutdown(ctx)
}

func run(addr string, workers, inflight int, timeout time.Duration, queryCap int, drain time.Duration, dataDir, fsync string, hardExactLimit int, loads []loadSpec) error {
	srv := serve.New(serve.Config{
		Addr:           addr,
		Workers:        workers,
		MaxInFlight:    inflight,
		RequestTimeout: timeout,
		QueryCacheCap:  queryCap,
		DataDir:        dataDir,
		Fsync:          fsync,
		HardExactLimit: hardExactLimit,
	})
	// Without a data dir, preloads land before the listener opens.  With
	// one, they run after Start's recovery so the creations are logged
	// durably — and a -load name the data dir already holds is skipped
	// (the recovered state wins; reloading it every boot would conflict).
	preload := func() error {
		for _, ls := range loads {
			facts, err := os.ReadFile(ls.path)
			if err != nil {
				return err
			}
			info, err := srv.Registry().CreateStructure(ls.name, string(facts), nil)
			if err != nil {
				if dataDir != "" && serve.IsDuplicate(err) {
					fmt.Fprintf(os.Stderr, "epserved: %s already in data dir; skipping -load\n", ls.name)
					continue
				}
				return fmt.Errorf("preload %s: %w", ls.name, err)
			}
			fmt.Fprintf(os.Stderr, "epserved: loaded %s (%d elements, %d tuples)\n", info.Name, info.Size, info.Tuples)
		}
		return nil
	}
	if dataDir == "" {
		if err := preload(); err != nil {
			return err
		}
	}
	if err := srv.Start(); err != nil {
		return err
	}
	if dataDir != "" {
		if err := preload(); err != nil {
			return err
		}
	}
	if dataDir != "" {
		d := srv.Registry().DurabilityStats()
		fmt.Fprintf(os.Stderr, "epserved: recovered %d structures (%d snapshots, %d WAL records) from %s; fsync=%s\n",
			d.RecoveredStructures, d.RecoveredSnapshots, d.RecoveredRecords, dataDir, d.Fsync)
		if d.TruncatedTail {
			fmt.Fprintln(os.Stderr, "epserved: WARNING: a torn or corrupt WAL tail was truncated during recovery")
		}
	}
	fmt.Fprintf(os.Stderr, "epserved: listening on %s\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "epserved: shutting down (draining in-flight requests)")
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	return srv.Shutdown(ctx)
}
