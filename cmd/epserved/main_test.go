package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/serve"
)

func TestParseLoadSpec(t *testing.T) {
	ls, err := parseLoadSpec("social=social.facts")
	if err != nil || ls.name != "social" || ls.path != "social.facts" {
		t.Fatalf("parseLoadSpec = %+v, %v", ls, err)
	}
	for _, bad := range []string{"", "social", "=x", "social="} {
		if _, err := parseLoadSpec(bad); err == nil {
			t.Errorf("parseLoadSpec(%q) should fail", bad)
		}
	}
}

// The binary's server lifecycle: preload, serve, count, drain.
func TestServerLifecycle(t *testing.T) {
	dir := t.TempDir()
	facts := filepath.Join(dir, "g.facts")
	if err := os.WriteFile(facts, []byte("E(a,b). E(b,c). E(c,a).\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	srv := serve.New(serve.Config{Addr: "127.0.0.1:0"})
	data, err := os.ReadFile(facts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Registry().CreateStructure("g", string(data), nil); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	cl := serve.NewClient("http://"+srv.Addr(), nil)
	ctx := context.Background()
	v, _, err := cl.Count(ctx, "tri(x,y,z) := E(x,y) & E(y,z) & E(z,x)", "g")
	if err != nil {
		t.Fatal(err)
	}
	if v.Int64() != 3 {
		t.Fatalf("count = %v, want 3", v)
	}
	shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		t.Fatal(err)
	}
}
