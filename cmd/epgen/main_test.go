package main

import "testing"

func TestParseSig(t *testing.T) {
	sig, err := parseSig("E/2, F/1")
	if err != nil {
		t.Fatal(err)
	}
	if ar, _ := sig.Arity("E"); ar != 2 {
		t.Fatal("arity wrong")
	}
	if ar, _ := sig.Arity("F"); ar != 1 {
		t.Fatal("arity wrong")
	}
	for _, bad := range []string{"E", "E/x", "E/0"} {
		if _, err := parseSig(bad); err == nil {
			t.Errorf("parseSig(%q) should fail", bad)
		}
	}
}

func TestGenerateKinds(t *testing.T) {
	kinds := []string{"er", "planted", "grid", "path", "cycle", "complete", "random", "social"}
	for _, k := range kinds {
		s, err := generate(k, 8, 0.3, 3, 3, 3, 0.2, "E/2", 4, 2, 1)
		if err != nil {
			t.Fatalf("generate(%q): %v", k, err)
		}
		if s.Size() == 0 {
			t.Fatalf("generate(%q): empty structure", k)
		}
		if _, err := s.FactsString(); err != nil {
			t.Fatalf("generate(%q) not serializable: %v", k, err)
		}
	}
	if _, err := generate("nope", 1, 0, 0, 0, 0, 0, "", 0, 0, 0); err == nil {
		t.Fatal("unknown kind should fail")
	}
}
