// Command epgen generates synthetic workloads as fact files consumable by
// epcount: random graphs (symmetric {E/2} encodings), planted cliques,
// grids, random structures over a custom signature, and the social
// network used by the examples.
//
// Usage:
//
//	epgen -kind er -n 100 -p 0.05 -seed 7 > g.facts
//	epgen -kind planted -n 60 -p 0.1 -k 6 > g.facts
//	epgen -kind grid -rows 8 -cols 12 > g.facts
//	epgen -kind random -sig 'E/2,F/1' -n 20 -density 0.2 > b.facts
//	epgen -kind social -n 300 -items 40 -groups 6 > s.facts
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/structure"
	"repro/internal/workload"
)

func main() {
	var (
		kind    = flag.String("kind", "er", "er | planted | grid | path | cycle | complete | random | social")
		n       = flag.Int("n", 50, "number of vertices / elements / persons")
		p       = flag.Float64("p", 0.1, "edge probability (er, planted)")
		k       = flag.Int("k", 5, "planted clique size")
		rows    = flag.Int("rows", 5, "grid rows")
		cols    = flag.Int("cols", 5, "grid cols")
		density = flag.Float64("density", 0.2, "tuple density (random)")
		sigSpec = flag.String("sig", "E/2", "signature for -kind random, e.g. 'E/2,F/1'")
		items   = flag.Int("items", 20, "items (social)")
		groups  = flag.Int("groups", 5, "groups (social)")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	s, err := generate(*kind, *n, *p, *k, *rows, *cols, *density, *sigSpec, *items, *groups, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "epgen:", err)
		os.Exit(1)
	}
	if err := s.WriteFacts(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "epgen:", err)
		os.Exit(1)
	}
}

func generate(kind string, n int, p float64, k, rows, cols int, density float64, sigSpec string, items, groups int, seed int64) (*structure.Structure, error) {
	switch kind {
	case "er":
		return workload.GraphStructure(workload.ER(n, p, seed)), nil
	case "planted":
		return workload.GraphStructure(workload.PlantedClique(n, p, k, seed)), nil
	case "grid":
		return workload.GraphStructure(workload.GridGraph(rows, cols)), nil
	case "path":
		return workload.GraphStructure(workload.PathGraph(n)), nil
	case "cycle":
		return workload.GraphStructure(workload.CycleGraph(n)), nil
	case "complete":
		return workload.GraphStructure(workload.CompleteGraph(n)), nil
	case "random":
		sig, err := parseSig(sigSpec)
		if err != nil {
			return nil, err
		}
		return workload.RandomStructure(sig, n, density, seed), nil
	case "social":
		return workload.SocialNetwork(n, items, groups, seed), nil
	}
	return nil, fmt.Errorf("unknown kind %q", kind)
}

func parseSig(spec string) (*structure.Signature, error) {
	var rels []structure.RelSym
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		nameArity := strings.SplitN(part, "/", 2)
		if len(nameArity) != 2 {
			return nil, fmt.Errorf("bad relation spec %q (want Name/Arity)", part)
		}
		ar, err := strconv.Atoi(nameArity[1])
		if err != nil {
			return nil, fmt.Errorf("bad arity in %q: %v", part, err)
		}
		rels = append(rels, structure.RelSym{Name: nameArity[0], Arity: ar})
	}
	return structure.NewSignature(rels...)
}
