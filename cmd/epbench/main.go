// Command epbench runs the reproduction experiment suite (E1–E10, P1, S1–S2,
// D1, C1, A1–A6;
// see DESIGN.md §4) and prints one table per experiment.  Since the paper
// is a theory paper with no measurement section, these tables are the
// "figures" of the reproduction: each operationalizes one worked example
// or theorem and self-validates.
//
// Usage:
//
//	epbench                  # full suite
//	epbench -quick           # smaller instances
//	epbench -run E3          # one experiment
//	epbench -list            # list experiments
//	epbench -json out/       # also write machine-readable BENCH_<id>.json files
//	epbench -workers 4       # cap the parallel executor's worker pool
//	epbench -cores 1,2,4,8   # core budgets for the P1 sweep
//	epbench -cpuprofile p.pb # write a pprof CPU profile of the run
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/experiments"
)

func main() {
	var (
		quick      = flag.Bool("quick", false, "run reduced instance sizes")
		runID      = flag.String("run", "", "run a single experiment by id (e.g. E3)")
		list       = flag.Bool("list", false, "list experiments and exit")
		csvDir     = flag.String("csv", "", "also write each table as CSV into this directory")
		jsonDir    = flag.String("json", "", "also write each table as BENCH_<id>.json into this directory")
		workers    = flag.Int("workers", 0, "worker pool size for the parallel executor and batch pools (0 = EPCQ_WORKERS, else GOMAXPROCS)")
		coresFlag  = flag.String("cores", "", "comma-separated core budgets for the P1 sweep (e.g. 1,2,4,8)")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	flag.Parse()
	if *workers > 0 {
		engine.SetDefaultWorkers(*workers)
	}
	if *list {
		for _, s := range experiments.All() {
			fmt.Printf("%-3s  %s\n", s.ID, s.Title)
		}
		return
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "epbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "epbench:", err)
			os.Exit(1)
		}
	}
	cores, err := parseCores(*coresFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "epbench:", err)
		os.Exit(2)
	}
	// Profiles must flush on every exit path, so the suite reports its
	// exit code instead of calling os.Exit mid-run.
	code := runSuite(*quick, *runID, *csvDir, *jsonDir, cores)
	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		writeHeapProfile(*memProfile)
	}
	os.Exit(code)
}

func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "epbench:", err)
		return
	}
	defer f.Close()
	runtime.GC() // settle live heap before the snapshot
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "epbench:", err)
	}
}

// parseCores turns the -cores flag ("1,2,4,8") into a budget list.
func parseCores(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var cores []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -cores entry %q (want positive integers)", part)
		}
		cores = append(cores, n)
	}
	return cores, nil
}

func runSuite(quick bool, runID, csvDir, jsonDir string, cores []int) int {
	cfg := experiments.Config{Quick: quick, Cores: cores}
	specs := experiments.All()
	if runID != "" {
		s, err := experiments.Get(runID)
		if err != nil {
			fmt.Fprintln(os.Stderr, "epbench:", err)
			return 1
		}
		specs = []experiments.Spec{s}
	}
	failed := 0
	for _, s := range specs {
		start := time.Now()
		tbl, err := s.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "epbench: %s failed: %v\n", s.ID, err)
			failed++
			continue
		}
		elapsed := time.Since(start)
		fmt.Print(tbl.Render())
		fmt.Printf("elapsed: %v\n\n", elapsed.Round(time.Millisecond))
		if csvDir != "" {
			if err := os.MkdirAll(csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "epbench:", err)
				return 1
			}
			path := filepath.Join(csvDir, s.ID+".csv")
			if err := os.WriteFile(path, []byte(tbl.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "epbench:", err)
				return 1
			}
		}
		if jsonDir != "" {
			if err := os.MkdirAll(jsonDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "epbench:", err)
				return 1
			}
			data, err := tbl.JSON(elapsed)
			if err != nil {
				fmt.Fprintln(os.Stderr, "epbench:", err)
				return 1
			}
			path := filepath.Join(jsonDir, "BENCH_"+s.ID+".json")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "epbench:", err)
				return 1
			}
		}
		if !tbl.OK {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "epbench: %d experiment(s) failed validation\n", failed)
		return 1
	}
	return 0
}
