// Command epbench runs the reproduction experiment suite (E1–E9, A1–A5;
// see DESIGN.md §4) and prints one table per experiment.  Since the paper
// is a theory paper with no measurement section, these tables are the
// "figures" of the reproduction: each operationalizes one worked example
// or theorem and self-validates.
//
// Usage:
//
//	epbench            # full suite
//	epbench -quick     # smaller instances
//	epbench -run E3    # one experiment
//	epbench -list      # list experiments
//	epbench -json out/ # also write machine-readable BENCH_<id>.json files
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "run reduced instance sizes")
		runID   = flag.String("run", "", "run a single experiment by id (e.g. E3)")
		list    = flag.Bool("list", false, "list experiments and exit")
		csvDir  = flag.String("csv", "", "also write each table as CSV into this directory")
		jsonDir = flag.String("json", "", "also write each table as BENCH_<id>.json into this directory")
	)
	flag.Parse()
	if *list {
		for _, s := range experiments.All() {
			fmt.Printf("%-3s  %s\n", s.ID, s.Title)
		}
		return
	}
	cfg := experiments.Config{Quick: *quick}
	specs := experiments.All()
	if *runID != "" {
		s, err := experiments.Get(*runID)
		if err != nil {
			fmt.Fprintln(os.Stderr, "epbench:", err)
			os.Exit(1)
		}
		specs = []experiments.Spec{s}
	}
	failed := 0
	for _, s := range specs {
		start := time.Now()
		tbl, err := s.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "epbench: %s failed: %v\n", s.ID, err)
			failed++
			continue
		}
		elapsed := time.Since(start)
		fmt.Print(tbl.Render())
		fmt.Printf("elapsed: %v\n\n", elapsed.Round(time.Millisecond))
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "epbench:", err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, s.ID+".csv")
			if err := os.WriteFile(path, []byte(tbl.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "epbench:", err)
				os.Exit(1)
			}
		}
		if *jsonDir != "" {
			if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "epbench:", err)
				os.Exit(1)
			}
			data, err := tbl.JSON(elapsed)
			if err != nil {
				fmt.Fprintln(os.Stderr, "epbench:", err)
				os.Exit(1)
			}
			path := filepath.Join(*jsonDir, "BENCH_"+s.ID+".json")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "epbench:", err)
				os.Exit(1)
			}
		}
		if !tbl.OK {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "epbench: %d experiment(s) failed validation\n", failed)
		os.Exit(1)
	}
}
