// Command epshell is an interactive workbench for the library: load a
// structure, run counting queries against it, inspect answers, compiled
// pipelines and trichotomy classifications.
//
// Usage:
//
//	epshell [-data file.facts]
//
// Commands (also shown by `help`):
//
//	load <file>              load a fact file as the current structure
//	fact E(a,b)              add a single fact
//	show                     print the current structure
//	count <query>            count answers, e.g. count p(x,y) := E(x,y)
//	answers [N] <query>      list up to N answers (default 20)
//	explain <query>          show the compiled pipeline (φ*, φ⁺, widths)
//	classify <query>         trichotomy verdict vs bounds (1,1)
//	equiv <q1> ;; <q2>       counting equivalence of two pp-queries
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	epcq "repro"
	"repro/internal/core"
	"repro/internal/count"
)

func main() {
	dataFile := flag.String("data", "", "fact file to load at startup")
	flag.Parse()
	sh := &shell{out: os.Stdout}
	if *dataFile != "" {
		if err := sh.load(*dataFile); err != nil {
			fmt.Fprintln(os.Stderr, "epshell:", err)
			os.Exit(1)
		}
	}
	sh.repl(os.Stdin)
}

type shell struct {
	out io.Writer
	db  *epcq.Structure
}

func (sh *shell) repl(in io.Reader) {
	sc := bufio.NewScanner(in)
	fmt.Fprint(sh.out, "epcq shell — 'help' for commands\n> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "quit" || line == "exit" {
			return
		}
		if line != "" {
			if err := sh.dispatch(line); err != nil {
				fmt.Fprintln(sh.out, "error:", err)
			}
		}
		fmt.Fprint(sh.out, "> ")
	}
}

func (sh *shell) dispatch(line string) error {
	cmd, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch cmd {
	case "help":
		fmt.Fprintln(sh.out, `commands:
  load <file>           load a fact file
  fact E(a,b)           add one fact
  show                  print the current structure
  count <query>         count answers
  answers [N] <query>   list up to N answers (default 20)
  explain <query>       compiled pipeline (φ*, φ⁺, widths)
  classify <query>      trichotomy verdict vs bounds (1,1)
  equiv <q1> ;; <q2>    counting equivalence of two pp-queries
  quit`)
		return nil
	case "load":
		return sh.load(rest)
	case "fact":
		return sh.fact(rest)
	case "show":
		if sh.db == nil {
			return fmt.Errorf("no structure loaded")
		}
		fmt.Fprintln(sh.out, sh.db)
		return nil
	case "count":
		return sh.count(rest)
	case "answers":
		return sh.answers(rest)
	case "explain":
		return sh.explain(rest)
	case "classify":
		return sh.classify(rest)
	case "equiv":
		return sh.equiv(rest)
	default:
		return fmt.Errorf("unknown command %q (try 'help')", cmd)
	}
}

func (sh *shell) load(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	db, err := epcq.ParseStructure(string(raw), nil)
	if err != nil {
		return err
	}
	sh.db = db
	fmt.Fprintf(sh.out, "loaded %d elements, %d facts over %s\n", db.Size(), db.NumTuples(), db.Signature())
	return nil
}

func (sh *shell) fact(src string) error {
	if sh.db == nil {
		db, err := epcq.ParseStructure(src, nil)
		if err != nil {
			return err
		}
		sh.db = db
		return nil
	}
	// Parse the fact against a widened signature, then merge.
	add, err := epcq.ParseStructure(src, nil)
	if err != nil {
		return err
	}
	if !add.Signature().Equal(sh.db.Signature()) {
		// Rebuild over the union signature.
		cur, err := sh.db.FactsString()
		if err != nil {
			return err
		}
		merged, err := epcq.ParseStructure(cur+"\n"+src, nil)
		if err != nil {
			return err
		}
		sh.db = merged
		return nil
	}
	for _, r := range add.Signature().Rels() {
		var addErr error
		names := make([]string, r.Arity)
		add.ForEachTuple(r.Name, func(t []int) bool {
			for i, v := range t {
				names[i] = add.ElemName(v)
			}
			addErr = sh.db.AddFact(r.Name, names...)
			return addErr == nil
		})
		if addErr != nil {
			return addErr
		}
	}
	return nil
}

// counterFor parses the query against a signature compatible with the
// loaded structure.
func (sh *shell) counterFor(src string) (*core.Counter, error) {
	if sh.db == nil {
		return nil, fmt.Errorf("no structure loaded (use 'load' or 'fact')")
	}
	q, err := epcq.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return core.NewCounter(q, sh.db.Signature(), count.EngineFPT)
}

func (sh *shell) count(src string) error {
	c, err := sh.counterFor(src)
	if err != nil {
		return err
	}
	n, err := c.Count(sh.db)
	if err != nil {
		return err
	}
	fmt.Fprintln(sh.out, n)
	return nil
}

func (sh *shell) answers(rest string) error {
	limit := 20
	if first, more, ok := strings.Cut(rest, " "); ok {
		if n, err := strconv.Atoi(first); err == nil {
			limit = n
			rest = strings.TrimSpace(more)
		}
	}
	c, err := sh.counterFor(rest)
	if err != nil {
		return err
	}
	shown, err := c.Answers(sh.db, limit, func(a count.Answer) bool {
		fmt.Fprintf(sh.out, "  (%s)\n", strings.Join(a, ", "))
		return true
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(sh.out, "%d answer(s) shown (limit %d)\n", shown, limit)
	return nil
}

func (sh *shell) explain(src string) error {
	c, err := sh.counterFor(src)
	if err != nil {
		return err
	}
	fmt.Fprint(sh.out, c.Explain())
	return nil
}

func (sh *shell) classify(src string) error {
	c, err := sh.counterFor(src)
	if err != nil {
		return err
	}
	v, err := c.Classify(1, 1)
	if err != nil {
		return err
	}
	fmt.Fprintln(sh.out, v)
	return nil
}

func (sh *shell) equiv(rest string) error {
	lhs, rhs, ok := strings.Cut(rest, ";;")
	if !ok {
		return fmt.Errorf("usage: equiv <q1> ;; <q2>")
	}
	q1, err := epcq.ParseQuery(strings.TrimSpace(lhs))
	if err != nil {
		return fmt.Errorf("left query: %v", err)
	}
	q2, err := epcq.ParseQuery(strings.TrimSpace(rhs))
	if err != nil {
		return fmt.Errorf("right query: %v", err)
	}
	eq, err := epcq.CountingEquivalent(q1, q2, nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(sh.out, "counting equivalent: %v\n", eq)
	return nil
}
