package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func newTestShell(t *testing.T) (*shell, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	return &shell{out: &buf}, &buf
}

func TestShellSession(t *testing.T) {
	sh, out := newTestShell(t)
	dir := t.TempDir()
	facts := filepath.Join(dir, "g.facts")
	if err := os.WriteFile(facts, []byte("E(a,b). E(b,c). E(c,a).\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	steps := []string{
		"load " + facts,
		"show",
		"count p(s,t) := exists u. E(s,u) & E(u,t)",
		"answers 2 p(x,y) := E(x,y)",
		"explain q(x,y) := E(x,y) | E(y,x)",
		"classify c(x,y,z) := E(x,y) & E(y,z) & E(z,x)",
		"equiv a(x,y) := E(x,y) ;; b(w,z) := E(w,z)",
		"fact E(c,d)",
		"count p(x,y) := E(x,y)",
	}
	for _, s := range steps {
		if err := sh.dispatch(s); err != nil {
			t.Fatalf("%q: %v", s, err)
		}
	}
	text := out.String()
	for _, want := range []string{
		"loaded 3 elements",
		"universe",
		"3", // 3 two-step walks on the triangle
		"2 answer(s) shown",
		"φ⁺ size",
		"p-#Clique-hard",
		"counting equivalent: true",
		"4", // after adding E(c,d): 4 edges
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("session output missing %q:\n%s", want, text)
		}
	}
}

func TestShellErrors(t *testing.T) {
	sh, _ := newTestShell(t)
	for _, s := range []string{
		"count p(x) := E(x,x)", // no structure
		"show",
		"load /nonexistent.facts",
		"flurb",
		"equiv onlyone",
	} {
		if err := sh.dispatch(s); err == nil {
			t.Errorf("%q should fail", s)
		}
	}
	if err := sh.dispatch("help"); err != nil {
		t.Fatal(err)
	}
}

func TestShellReplQuit(t *testing.T) {
	sh, out := newTestShell(t)
	sh.repl(strings.NewReader("help\nquit\n"))
	if !strings.Contains(out.String(), "commands:") {
		t.Fatal("repl did not print help")
	}
}

func TestShellFactBootstrapsStructure(t *testing.T) {
	sh, out := newTestShell(t)
	if err := sh.dispatch("fact E(a,b). E(b,a)."); err != nil {
		t.Fatal(err)
	}
	if err := sh.dispatch("count q(x,y) := E(x,y)"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "2") {
		t.Fatalf("output:\n%s", out.String())
	}
	// Widening the signature through a new relation.
	if err := sh.dispatch("fact F(a)"); err != nil {
		t.Fatal(err)
	}
	if err := sh.dispatch("count q(x) := F(x)"); err != nil {
		t.Fatal(err)
	}
}
