package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/count"
)

func TestParseEngine(t *testing.T) {
	cases := map[string]count.PPEngine{
		"fpt":        count.EngineFPT,
		"auto":       count.EngineAuto,
		"fpt-nocore": count.EngineFPTNoCore,
		"projection": count.EngineProjection,
		"proj":       count.EngineProjection,
		"brute":      count.EngineBrute,
	}
	for name, want := range cases {
		got, err := parseEngine(name)
		if err != nil || got != want {
			t.Errorf("parseEngine(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseEngine("quantum"); err == nil {
		t.Error("unknown engine should fail")
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "g.facts")
	if err := os.WriteFile(data, []byte("E(a,b). E(b,c). E(c,a).\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("p(s,t) := exists u. E(s,u) & E(u,t)", "", data, "fpt", false, true, true, false, 3, 2, approxOpts{}); err != nil {
		t.Fatal(err)
	}
	// Query file variant.
	qf := filepath.Join(dir, "q.epq")
	if err := os.WriteFile(qf, []byte("p(x,y) := E(x,y)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", qf, data, "projection", true, false, false, true, -1, 0, approxOpts{}); err != nil {
		t.Fatal(err)
	}
	// Approx mode: routed counting with explicit (ε, δ) and seed.
	ao := approxOpts{mode: "approx", eps: 0.1, delta: 0.05, seed: 7}
	if err := run("tri(x,y,z) := E(x,y) & E(y,z) & E(z,x)", "", data, "fpt", false, false, false, false, 0, 0, ao); err != nil {
		t.Fatal(err)
	}
	// -verify cross-checks exact engines; it has no meaning under approx.
	ao2 := approxOpts{mode: "approx"}
	if err := run("p(x,y) := E(x,y)", "", data, "fpt", false, false, true, false, 0, 0, ao2); err == nil {
		t.Fatal("-verify with -mode approx should fail")
	}
	// Unknown mode is rejected.
	if err := run("p(x,y) := E(x,y)", "", data, "fpt", false, false, false, false, 0, 0, approxOpts{mode: "bogus"}); err == nil {
		t.Fatal("unknown mode should fail")
	}
}

func TestRunArgumentValidation(t *testing.T) {
	if err := run("", "", "x.facts", "fpt", false, false, false, false, 0, 0, approxOpts{}); err == nil {
		t.Fatal("missing query should fail")
	}
	if err := run("q(x) := E(x,x)", "qf", "x.facts", "fpt", false, false, false, false, 0, 0, approxOpts{}); err == nil {
		t.Fatal("both query and queryfile should fail")
	}
	if err := run("q(x) := E(x,x)", "", "", "fpt", false, false, false, false, 0, 0, approxOpts{}); err == nil {
		t.Fatal("missing data should fail")
	}
	if err := run("q(x) := E(x,x)", "", "/nonexistent.facts", "fpt", false, false, false, false, 0, 0, approxOpts{}); err == nil {
		t.Fatal("missing data file should fail")
	}
}
