// Command epcount counts the answers to an existential positive query on
// a finite structure.
//
// Usage:
//
//	epcount -query 'phi(x,y) := E(x,y) | E(y,x)' -data graph.facts
//	epcount -queryfile q.epq -data db.facts -engine projection -explain
//
// The query is given inline (-query) or from a file (-queryfile); the
// structure is a fact file (see ParseStructure syntax).  -explain prints
// the compiled pipeline (normalized disjuncts, φ*, φ⁺ and the structural
// parameters of the trichotomy) before counting.
package main

import (
	"flag"
	"fmt"
	"math/big"
	"os"
	"strings"
	"time"

	epcq "repro"
	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/count"
	"repro/internal/engine"
)

func main() {
	var (
		queryStr  = flag.String("query", "", "query text, e.g. 'phi(x,y) := E(x,y)'")
		queryFile = flag.String("queryfile", "", "file containing the query")
		dataFile  = flag.String("data", "", "fact file with the structure (required)")
		engine    = flag.String("engine", "fpt", "counting engine: fpt | fpt-nocore | projection | brute")
		explain   = flag.Bool("explain", false, "print the compiled pipeline before counting")
		stats     = flag.Bool("stats", false, "print term-interning and cache statistics after counting")
		verify    = flag.Bool("verify", false, "cross-check with a second engine")
		timing    = flag.Bool("time", false, "print elapsed wall-clock time")
		answers   = flag.Int("answers", 0, "also print up to N answers (-1 = all)")
		workers   = flag.Int("workers", 0, "worker pool size for the parallel join-count executor (0 = EPCQ_WORKERS, else GOMAXPROCS)")
		mode      = flag.String("mode", "exact", "counting mode: exact | approx (approx samples hard terms, exact terms stay exact)")
		eps       = flag.Float64("eps", 0, "approx mode: target relative error (0 = 0.1)")
		delta     = flag.Float64("delta", 0, "approx mode: failure probability (0 = 0.05)")
		seed      = flag.Int64("seed", 0, "approx mode: RNG seed for reproducible estimates (0 = 1)")
		maxS      = flag.Int("max-samples", 0, "approx mode: sample-budget cap per component (0 = 200000)")
	)
	flag.Parse()
	ao := approxOpts{mode: *mode, eps: *eps, delta: *delta, seed: *seed, maxSamples: *maxS}
	if err := run(*queryStr, *queryFile, *dataFile, *engine, *explain, *stats, *verify, *timing, *answers, *workers, ao); err != nil {
		fmt.Fprintln(os.Stderr, "epcount:", err)
		os.Exit(1)
	}
}

// approxOpts carries the -mode/-eps/-delta/-seed/-max-samples flags.
type approxOpts struct {
	mode       string
	eps, delta float64
	seed       int64
	maxSamples int
}

func run(queryStr, queryFile, dataFile, engineName string, explain, stats, verify, timing bool, answers, workers int, ao approxOpts) error {
	if (queryStr == "") == (queryFile == "") {
		return fmt.Errorf("exactly one of -query or -queryfile is required")
	}
	if dataFile == "" {
		return fmt.Errorf("-data is required")
	}
	if queryFile != "" {
		raw, err := os.ReadFile(queryFile)
		if err != nil {
			return err
		}
		queryStr = string(raw)
	}
	q, err := epcq.ParseQuery(queryStr)
	if err != nil {
		return err
	}
	raw, err := os.ReadFile(dataFile)
	if err != nil {
		return err
	}
	// Parse the structure against the query's signature so that relations
	// the query mentions but the data omits are present (and empty).
	sig, err := epcq.InferSignature(q)
	if err != nil {
		return err
	}
	b, err := epcq.ParseStructure(string(raw), sig)
	if err != nil {
		return err
	}
	eng, err := parseEngine(engineName)
	if err != nil {
		return err
	}
	c, err := core.NewCounter(q, sig, eng)
	if err != nil {
		return err
	}
	if workers > 0 {
		c.WithWorkers(workers)
	}
	if explain {
		fmt.Print(c.Explain())
	}
	start := time.Now()
	var n *big.Int
	switch ao.mode {
	case "", "exact":
		n, err = c.Count(b)
		if err != nil {
			return err
		}
		fmt.Printf("%v\n", n)
	case "approx":
		res, aerr := c.CountApprox(b, approx.Params{
			Epsilon:    ao.eps,
			Delta:      ao.delta,
			Seed:       ao.seed,
			MaxSamples: ao.maxSamples,
		})
		if aerr != nil {
			return aerr
		}
		n = res.Estimate
		fmt.Printf("%v\n", n)
		fmt.Fprintf(os.Stderr, "approx: rel-error ≤ %.4g at confidence %.4g (case %s, %d samples",
			res.RelErr, res.Confidence, res.Case.Short(), res.Samples)
		if res.Exact {
			fmt.Fprint(os.Stderr, ", exact")
		}
		if !res.Converged {
			fmt.Fprint(os.Stderr, ", NOT converged — raise -max-samples")
		}
		fmt.Fprintln(os.Stderr, ")")
	default:
		return fmt.Errorf("unknown -mode %q (want exact or approx)", ao.mode)
	}
	elapsed := time.Since(start)
	if verify {
		if ao.mode == "approx" {
			return fmt.Errorf("-verify cross-checks exact engines and does not apply to -mode approx")
		}
		v, err := c.CountWithAllEngines(b)
		if err != nil {
			return err
		}
		if v.Cmp(n) != 0 {
			return fmt.Errorf("verification failed: %v vs %v", v, n)
		}
		fmt.Fprintln(os.Stderr, "verified: engines agree")
	}
	if timing {
		fmt.Fprintf(os.Stderr, "elapsed: %v (|B| = %d, %d tuples)\n", elapsed, b.Size(), b.NumTuples())
	}
	if stats {
		fmt.Fprint(os.Stderr, c.Stats())
	}
	if answers != 0 {
		limit := answers
		if limit < 0 {
			limit = 0 // unlimited
		}
		_, err := c.Answers(b, limit, func(a count.Answer) bool {
			fmt.Printf("  (%s)\n", strings.Join(a, ", "))
			return true
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func parseEngine(name string) (count.PPEngine, error) {
	return engine.ParseName(name)
}
