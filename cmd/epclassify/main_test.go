package main

import "testing"

func TestParseRange(t *testing.T) {
	cases := []struct {
		in     string
		lo, hi int
		ok     bool
	}{
		{"2..5", 2, 5, true},
		{"3", 3, 3, true},
		{"5..2", 0, 0, false},
		{"x..y", 0, 0, false},
		{"2..y", 0, 0, false},
	}
	for _, c := range cases {
		lo, hi, err := parseRange(c.in)
		if c.ok && (err != nil || lo != c.lo || hi != c.hi) {
			t.Errorf("parseRange(%q) = %d,%d,%v", c.in, lo, hi, err)
		}
		if !c.ok && err == nil {
			t.Errorf("parseRange(%q) should fail", c.in)
		}
	}
}

func TestFamilyGen(t *testing.T) {
	for _, name := range []string{"path", "freepath", "clique", "cliquesentence", "star", "cycle", "CLIQUE"} {
		if _, err := familyGen(name); err != nil {
			t.Errorf("familyGen(%q) failed: %v", name, err)
		}
	}
	if _, err := familyGen("nope"); err == nil {
		t.Error("unknown family should fail")
	}
}

func TestRunFamilySmoke(t *testing.T) {
	if err := runFamily("path", "2..3"); err != nil {
		t.Fatal(err)
	}
}

func TestClassifyOneSmoke(t *testing.T) {
	if err := classifyOne("q(s,t) := exists u. E(s,u) & E(u,t)", 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := classifyOne("not a query ((", 1, 1); err == nil {
		t.Fatal("bad query should fail")
	}
}
