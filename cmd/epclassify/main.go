// Command epclassify reports the trichotomy classification (Theorem 3.2)
// of one or more existential positive queries: it compiles each query to
// φ⁺ (Theorem 3.1), measures the treewidth of every member's core and
// contract graph, and prints the case the measured widths imply relative
// to the chosen bounds.
//
// Usage:
//
//	epclassify -query 'phi(x,y) := E(x,y) | E(y,x)'
//	epclassify -queryfile queries.epq -wcore 2 -wcontract 1
//	epclassify -family clique -k 2..6
//
// A query file may contain several queries separated by blank lines.
// Built-in families: path, freepath, clique, cliquesentence, star, cycle.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	epcq "repro"
	"repro/internal/classify"
	"repro/internal/logic"
	"repro/internal/workload"
)

func main() {
	var (
		queryStr  = flag.String("query", "", "query text")
		queryFile = flag.String("queryfile", "", "file with queries separated by blank lines")
		family    = flag.String("family", "", "built-in family: path | freepath | clique | cliquesentence | star | cycle")
		kRange    = flag.String("k", "2..5", "parameter range for -family, e.g. 3..6")
		wCore     = flag.Int("wcore", 1, "core treewidth bound for case 1")
		wContract = flag.Int("wcontract", 1, "contract treewidth bound for cases 1-2")
	)
	flag.Parse()
	if err := run(*queryStr, *queryFile, *family, *kRange, *wCore, *wContract); err != nil {
		fmt.Fprintln(os.Stderr, "epclassify:", err)
		os.Exit(1)
	}
}

func run(queryStr, queryFile, family, kRange string, wCore, wContract int) error {
	switch {
	case family != "":
		return runFamily(family, kRange)
	case queryStr != "":
		return classifyOne(queryStr, wCore, wContract)
	case queryFile != "":
		raw, err := os.ReadFile(queryFile)
		if err != nil {
			return err
		}
		for _, block := range strings.Split(string(raw), "\n\n") {
			if strings.TrimSpace(block) == "" {
				continue
			}
			if err := classifyOne(block, wCore, wContract); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	default:
		return fmt.Errorf("one of -query, -queryfile or -family is required")
	}
}

func classifyOne(src string, wCore, wContract int) error {
	q, err := epcq.ParseQuery(src)
	if err != nil {
		return err
	}
	sig, err := epcq.InferSignature(q)
	if err != nil {
		return err
	}
	v, c, err := classify.ClassifyEP(q, sig, wCore, wContract)
	if err != nil {
		return err
	}
	fmt.Printf("query: %s\n", q)
	fmt.Printf("φ⁺ size: %d (%d free IE terms + %d sentence disjuncts)\n",
		len(c.Plus), len(c.Minus), len(c.Sentences))
	for i, r := range v.Reports {
		exact := ""
		if !r.CoreExact || !r.ContractExact {
			exact = " (heuristic bound)"
		}
		fmt.Printf("  φ⁺[%d]: core tw %d, contract tw %d, ∃-components %d%s\n",
			i, r.CoreTreewidth, r.ContractTreewidth, r.NumExistsComponents, exact)
	}
	fmt.Printf("verdict: %s\n", v)
	return nil
}

func runFamily(name, kRange string) error {
	gen, err := familyGen(name)
	if err != nil {
		return err
	}
	lo, hi, err := parseRange(kRange)
	if err != nil {
		return err
	}
	var ks []int
	for k := lo; k <= hi; k++ {
		ks = append(ks, k)
	}
	fv, err := epcq.AnalyzeQueryFamily(gen, workload.EdgeSig(), ks)
	if err != nil {
		return err
	}
	fmt.Printf("family %s, k = %d..%d\n", name, lo, hi)
	fmt.Printf("%-4s  %-8s  %-11s\n", "k", "core tw", "contract tw")
	for _, pt := range fv.Points {
		fmt.Printf("%-4d  %-8d  %-11d\n", pt.K, pt.CoreTW, pt.ContractTW)
	}
	fmt.Printf("core width trend: %v; contract width trend: %v\n", fv.CoreTrend, fv.ContractTrend)
	fmt.Printf("implied trichotomy case: %v\n", fv.ImpliedCase)
	return nil
}

func familyGen(name string) (func(int) logic.Query, error) {
	switch strings.ToLower(name) {
	case "path":
		return workload.PathQuery, nil
	case "freepath":
		return workload.FreePathQuery, nil
	case "clique":
		return workload.CliqueQuery, nil
	case "cliquesentence", "clique-sentence":
		return workload.CliqueSentence, nil
	case "star":
		return workload.StarQuery, nil
	case "cycle":
		return workload.CycleQuery, nil
	}
	return nil, fmt.Errorf("unknown family %q", name)
}

func parseRange(s string) (int, int, error) {
	parts := strings.SplitN(s, "..", 2)
	if len(parts) == 1 {
		k, err := strconv.Atoi(parts[0])
		return k, k, err
	}
	lo, err := strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, err
	}
	hi, err := strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, err
	}
	if lo > hi {
		return 0, 0, fmt.Errorf("empty range %q", s)
	}
	return lo, hi, nil
}
