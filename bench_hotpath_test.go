// Hot-path benchmarks: workloads decided entirely by the semi-join
// prune fixpoint, tracked in BENCH_pr7.json.
package epcq_test

import (
	"math/rand"
	"testing"

	"repro/internal/count"
	"repro/internal/engine"
	"repro/internal/structure"
	"repro/internal/workload"
)

// layeredStructure is a dense layered DAG: width vertices per layer,
// each non-final vertex wired to deg random vertices in the next layer.
// The longest directed walk has exactly layers-1 edges, so any path
// pattern longer than that has no homomorphisms — and because path
// queries are acyclic, the semi-join prune alone discovers this: the
// middle variable of a path-6 pattern needs both a 3-step in-walk and a
// 3-step out-walk, which a 4-layer target cannot supply, so the prune
// fixpoint empties its support within three rounds and the join DP
// never runs.  These benchmarks therefore time table materialization
// plus the prune pass and nothing else.
func layeredStructure(layers, width, deg int, seed int64) *structure.Structure {
	a := structure.New(workload.EdgeSig())
	n := layers * width
	for i := 0; i < n; i++ {
		a.EnsureElem("v" + string(rune('a'+i/676%26)) + string(rune('a'+i/26%26)) + string(rune('a'+i%26)))
	}
	rng := rand.New(rand.NewSource(seed))
	for l := 0; l < layers-1; l++ {
		for j := 0; j < width; j++ {
			u := l*width + j
			for d := 0; d < deg; d++ {
				_ = a.AddTuple("E", u, (l+1)*width+rng.Intn(width))
			}
		}
	}
	return a
}

func benchPrunePath6(b *testing.B, width int) {
	pattern := pathStructure(6)
	bs := layeredStructure(4, width, 8, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Session-cold every iteration: the prune result is memoized per
		// (component, session), so a warm session would time a map hit.
		engine.ReleaseSession(bs)
		v, err := count.Homomorphisms(pattern, bs)
		if err != nil {
			b.Fatal(err)
		}
		if v.Sign() != 0 {
			b.Fatal("a 4-layer DAG cannot hold a 6-edge walk")
		}
	}
}

// Semi-join prune fixpoint on a workload it fully decides, ~7200 rows
// per constraint table.
func BenchmarkPrune_Path6Layers4_W300(b *testing.B) { benchPrunePath6(b, 300) }

// The same shape at double the width: ~14400 rows per table.
func BenchmarkPrune_Path6Layers4_W600(b *testing.B) { benchPrunePath6(b, 600) }

// A trickle shape with survivors: the chain fits the DAG, so the prune
// trims boundary layers and the join DP runs over what remains.  The
// deeper the prune cuts, the less the DP enumerates.
func BenchmarkPrune_Path8Layers12_Trickle(b *testing.B) {
	pattern := pathStructure(8)
	bs := layeredStructure(12, 220, 7, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.ReleaseSession(bs)
		v, err := count.Homomorphisms(pattern, bs)
		if err != nil {
			b.Fatal(err)
		}
		if v.Sign() == 0 {
			b.Fatal("a 12-layer DAG holds 8-edge walks")
		}
	}
}
