// Motif counting and the hardness frontier: counting k-cliques through
// answer counting (the case-3 reduction of Theorem 3.2), next to genuinely
// tractable motifs (paths, which sit in case 1).
//
// The example encodes a random graph with a planted clique as a structure
// over {E/2} and counts motifs by querying; k-clique counts are answers
// divided by k!.
//
// Run with: go run ./examples/motifs
package main

import (
	"fmt"
	"log"
	"math/big"
	"math/rand"
	"time"

	epcq "repro"
)

// randomGraph builds a symmetric edge structure for G(n,p) plus a planted
// k-clique.
func randomGraph(n int, p float64, planted int, seed int64) *epcq.Structure {
	sig, err := epcq.NewSignature(epcq.RelSym{Name: "E", Arity: 2})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	s := epcq.NewStructure(sig)
	name := func(i int) string { return fmt.Sprintf("v%d", i) }
	addEdge := func(i, j int) {
		_ = s.AddFact("E", name(i), name(j))
		_ = s.AddFact("E", name(j), name(i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				addEdge(i, j)
			}
		}
	}
	perm := rng.Perm(n)
	for a := 0; a < planted; a++ {
		for b := a + 1; b < planted; b++ {
			addEdge(perm[a], perm[b])
		}
	}
	return s
}

// cliqueQuery builds the free k-clique query ⋀_{i<j} E(xi,xj).
func cliqueQuery(k int) epcq.Query {
	src := fmt.Sprintf("clique%d(", k)
	for i := 1; i <= k; i++ {
		if i > 1 {
			src += ","
		}
		src += fmt.Sprintf("x%d", i)
	}
	src += ") := "
	first := true
	for i := 1; i <= k; i++ {
		for j := i + 1; j <= k; j++ {
			if !first {
				src += " & "
			}
			first = false
			src += fmt.Sprintf("E(x%d,x%d)", i, j)
		}
	}
	return epcq.MustParseQuery(src)
}

func factorial(k int) *big.Int {
	f := big.NewInt(1)
	for i := 2; i <= k; i++ {
		f.Mul(f, big.NewInt(int64(i)))
	}
	return f
}

func main() {
	g := randomGraph(40, 0.25, 6, 42)
	fmt.Printf("graph: %d vertices, %d directed edge tuples\n\n", g.Size(), g.NumTuples())

	// Tractable motif: paths with quantified interior (case 1).
	path := epcq.MustParseQuery("p(s,t) := exists u, v. E(s,u) & E(u,v) & E(v,t)")
	start := time.Now()
	n, err := epcq.Count(path, g)
	if err != nil {
		log.Fatal(err)
	}
	v, _ := epcq.Classify(path, nil, 1, 1)
	fmt.Printf("3-step reach pairs: %v in %v [%v]\n\n", n, time.Since(start).Round(time.Microsecond), v.Case)

	// Hard motifs: k-cliques via the case-3 query family.
	fmt.Printf("%-3s  %-14s  %-12s  %s\n", "k", "#k-cliques", "time", "trichotomy case")
	for k := 2; k <= 5; k++ {
		q := cliqueQuery(k)
		counter, err := epcq.NewCounter(q, g.Signature(), epcq.EngineProjection)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		answers, err := counter.Count(g)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		cliques := new(big.Int).Quo(answers, factorial(k))
		verdict, err := counter.Classify(1, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-3d  %-14v  %-12v  %v\n", k, cliques, elapsed.Round(time.Microsecond), verdict.Case)
	}
	fmt.Println("\nThe growth of the k-clique column's cost with k is the point:")
	fmt.Println("free clique queries have contract graph K_k, so by Theorem 3.2")
	fmt.Println("their counting problem is p-#Clique-hard — no FPT algorithm is")
	fmt.Println("expected, and the engine's cost necessarily climbs with k.")
}
