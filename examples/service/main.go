// End-to-end epserved scenario: start the counting service in-process,
// ingest a social network over HTTP, stream live appends, and
// batch-count motif queries — the serving-layer counterpart of
// examples/socialnetwork.
//
// The same flow works against a standalone server:
//
//	go run ./cmd/epserved -addr :8080        # terminal 1
//	curl -s localhost:8080/healthz           # terminal 2, then the
//	                                         # requests below as curl
//
// Run with: go run ./examples/service
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/serve"
	"repro/internal/structure"
	"repro/internal/workload"
)

// factsOf renders a structure in the fact syntax the ingest endpoint
// accepts (structure.FactsString errors on non-serializable names; the
// workload generators only produce plain identifiers).
func factsOf(b *structure.Structure) string {
	facts, err := b.FactsString()
	if err != nil {
		log.Fatal(err)
	}
	return facts
}

func main() {
	// 1. Start the service (in-process here; cmd/epserved standalone).
	srv := serve.New(serve.Config{MaxInFlight: 16, RequestTimeout: 10 * time.Second})
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	fmt.Println("epserved listening on", srv.Addr())

	ctx := context.Background()
	cl := serve.NewClient("http://"+srv.Addr(), nil)

	// 2. Ingest a synthetic social network (persons follow persons,
	// like items, join groups).
	net := workload.SocialNetwork(160, 40, 8, 7)
	info, err := cl.CreateStructure(ctx, "social", factsOf(net), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %q: %d elements, %d tuples (version %d)\n",
		info.Name, info.Size, info.Tuples, info.Version)

	// 3. Batch-count motif queries.  Each query compiles once on the
	// server; counting-equivalent queries from other clients would
	// share the compiled plans.
	motifs := []struct{ name, query string }{
		{"mutual follows", "mutual(x,y) := Follows(x,y) & Follows(y,x)"},
		{"follow triangles", "tri(x,y,z) := Follows(x,y) & Follows(y,z) & Follows(z,x)"},
		{"co-liked items", "co(x,y,i) := Likes(x,i) & Likes(y,i)"},
		{"groupmates who follow", "gm(x,y) := exists g. Member(x,g) & Member(y,g) & Follows(x,y)"},
		{"influencer reach-2", "r2(x,z) := exists y. Follows(y,x) & Follows(z,y)"},
	}
	for _, m := range motifs {
		v, resp, err := cl.Count(ctx, m.query, "social")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-24s %12s  (%d µs)\n", m.name, v, resp.ElapsedUS)
	}

	// 4. Stream live appends: new follow edges arrive while the motif
	// counts keep being served; every count reflects the version it ran
	// against.
	fmt.Println("streaming follow edges...")
	for i := 0; i < 5; i++ {
		facts := fmt.Sprintf("Follows(p%d,p%d). Follows(p%d,p%d).", i, 40+i, 40+i, i)
		info, err := cl.AppendFacts(ctx, "social", facts)
		if err != nil {
			log.Fatal(err)
		}
		v, resp, err := cl.Count(ctx, "mutual(x,y) := Follows(x,y) & Follows(y,x)", "social")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  version %d: %d tuples, mutual follows = %s (version counted: %d)\n",
			info.Version, info.Tuples, v, resp.Version)
	}

	// 5. Batch across shards: ingest two more regional graphs and count
	// one motif over all three in a single request.
	for i, seed := range []int64{11, 12} {
		shard := workload.SocialNetwork(80, 20, 4, seed)
		if _, err := cl.CreateStructure(ctx, fmt.Sprintf("region%d", i), factsOf(shard), nil); err != nil {
			log.Fatal(err)
		}
	}
	vs, resp, err := cl.CountBatch(ctx, "mutual(x,y) := Follows(x,y) & Follows(y,x)",
		[]string{"social", "region0", "region1"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mutual follows per shard: %v (batch %d µs)\n", vs, resp.ElapsedUS)

	// 6. Telemetry: compiled queries, plan sharing, memo hits,
	// admission counters, session registry.
	st, err := cl.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stats: %d queries cached, %d/%d counting slots in use, %d admitted, %d sessions cached\n",
		len(st.Queries), st.Admission.InFlight, st.Admission.MaxInFlight,
		st.Admission.Admitted, st.Sessions.Sessions)
	for _, q := range st.Queries {
		fmt.Printf("  %-50s plans=%d shared=%d memo=%d/%d\n",
			q.Query, q.Plans, q.SharedPlans, q.CountCacheHits, q.CountCacheMisses)
	}
}
