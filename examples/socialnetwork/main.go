// Social-network analytics with counting UCQs — the motivating workload
// of the paper's introduction (counting operators in decision-support
// queries over large data volumes).
//
// The example builds a synthetic social network (persons follow persons,
// like items, join groups) and answers counting questions with ep-queries:
// each is compiled once and evaluated with the FPT engine.
//
// Run with: go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"
	"math/rand"

	epcq "repro"
)

func buildNetwork(nPersons, nItems, nGroups int, seed int64) (*epcq.Structure, error) {
	sig, err := epcq.NewSignature(
		epcq.RelSym{Name: "Follows", Arity: 2},
		epcq.RelSym{Name: "Likes", Arity: 2},
		epcq.RelSym{Name: "Member", Arity: 2},
	)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	s := epcq.NewStructure(sig)
	person := func(i int) string { return fmt.Sprintf("p%d", i) }
	item := func(i int) string { return fmt.Sprintf("i%d", i) }
	group := func(i int) string { return fmt.Sprintf("g%d", i) }
	for i := 1; i < nPersons; i++ {
		for d := 0; d < 1+rng.Intn(3); d++ {
			j := rng.Intn(i)
			if err := s.AddFact("Follows", person(i), person(j)); err != nil {
				return nil, err
			}
			if rng.Float64() < 0.25 {
				_ = s.AddFact("Follows", person(j), person(i))
			}
		}
	}
	for i := 0; i < nPersons; i++ {
		for d := 0; d < 1+rng.Intn(4); d++ {
			_ = s.AddFact("Likes", person(i), item(rng.Intn(nItems)))
		}
		if rng.Float64() < 0.8 {
			_ = s.AddFact("Member", person(i), group(rng.Intn(nGroups)))
		}
	}
	return s, nil
}

func main() {
	db, err := buildNetwork(400, 60, 8, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d nodes, %d facts\n\n", db.Size(), db.NumTuples())

	queries := []struct {
		what string
		src  string
	}{
		{
			"follower pairs (a follows b)",
			"f(a,b) := Follows(a,b)",
		},
		{
			"pairs with a common liked item",
			"common(a,b) := exists i. Likes(a,i) & Likes(b,i)",
		},
		{
			"2-step influence pairs (a follows someone following b)",
			"infl(a,b) := exists m. Follows(a,m) & Follows(m,b)",
		},
		{
			"mutual-follow pairs inside one group",
			"mg(a,b) := exists g. Follows(a,b) & Follows(b,a) & Member(a,g) & Member(b,g)",
		},
		{
			"pairs related by co-like OR co-membership (a genuine UCQ)",
			"rel(a,b) := (exists i. Likes(a,i) & Likes(b,i)) | (exists g. Member(a,g) & Member(b,g))",
		},
		{
			"triples: a follows b, b likes an item also liked by c",
			"t(a,b,c) := exists i. Follows(a,b) & Likes(b,i) & Likes(c,i)",
		},
	}

	for _, spec := range queries {
		q, err := epcq.ParseQuery(spec.src)
		if err != nil {
			log.Fatal(err)
		}
		counter, err := epcq.NewCounter(q, db.Signature(), epcq.EngineFPT)
		if err != nil {
			log.Fatal(err)
		}
		n, err := counter.Count(db)
		if err != nil {
			log.Fatal(err)
		}
		v, err := counter.Classify(1, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-58s %12v   [%v]\n", spec.what, n, v.Case)
	}

	fmt.Println("\nNote: counts are over the liberal variables, so 'pairs' count")
	fmt.Println("ordered pairs including a = b; the classification column is the")
	fmt.Println("Theorem 3.2 case of each query's φ⁺ relative to width bounds (1,1).")
}
