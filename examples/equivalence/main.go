// The equivalence theorem in action (Theorem 3.1, Examples 4.2, 4.3 and
// 5.21): compile the paper's running example to φ⁺, show the cancelled
// inclusion–exclusion expansion, and recover individual pp counts from
// oracle access to the ep-query alone.
//
// Run with: go run ./examples/equivalence
package main

import (
	"fmt"
	"log"
	"math/big"

	epcq "repro"
)

func main() {
	// Example 5.21's query θ: the Example 4.2 disjuncts plus a sentence
	// disjunct θ1 = ∃a,b,c,d. E(a,b) ∧ E(b,c) ∧ E(c,d).
	theta := epcq.MustParseQuery(`th(w,x,y,z) := E(x,y) & E(y,z)
		| E(z,w) & E(w,x)
		| E(w,x) & E(x,y)
		| exists a, b, c, d. E(a,b) & E(b,c) & E(c,d)`)

	compiled, err := epcq.Compile(theta, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query θ:", theta)
	fmt.Printf("\nnormalized disjuncts: %d free + %d sentence\n",
		len(compiled.Free), len(compiled.Sentences))
	fmt.Println("\nθ*af (inclusion–exclusion after cancellation, Prop 5.16):")
	for _, t := range compiled.Star {
		fmt.Printf("  %+d × %v\n", t.Coeff, t.Formula)
	}
	fmt.Println("\nθ⁻af (terms not entailing a sentence disjunct):")
	for _, t := range compiled.Minus {
		fmt.Printf("  %+d × %v\n", t.Coeff, t.Formula)
	}
	fmt.Printf("\nθ⁺ (the paper's Example 5.21 predicts {φ1, θ1}): %d formulas\n", len(compiled.Plus))
	for i, p := range compiled.Plus {
		fmt.Printf("  ψ%d = %v\n", i+1, p)
	}

	// Now exercise both slice reductions on a concrete structure.
	b, err := epcq.ParseStructure("E(1,2). E(2,3). E(3,1). E(3,3).", nil)
	if err != nil {
		log.Fatal(err)
	}
	counter, err := epcq.NewCounter(theta, b.Signature(), epcq.EngineFPT)
	if err != nil {
		log.Fatal(err)
	}
	total, err := counter.Count(b)
	if err != nil {
		log.Fatal(err)
	}
	maxCount := new(big.Int).Exp(big.NewInt(int64(b.Size())), big.NewInt(4), nil)
	fmt.Printf("\n|θ(B)| on B (4 edges, one loop): %v (max possible %v)\n", total, maxCount)

	fmt.Println("\nbackward reduction (Thm 5.20 / Appendix A): recover each |ψ(B)|")
	fmt.Println("using ONLY oracle calls to |θ(·)|:")
	for i, p := range counter.Compiled.Plus {
		direct, err := counter.CountPP(p, b)
		if err != nil {
			log.Fatal(err)
		}
		viaOracle, err := counter.CountPPViaOracle(p, b)
		if err != nil {
			log.Fatal(err)
		}
		status := "MISMATCH"
		if direct.Cmp(viaOracle) == 0 {
			status = "exact"
		}
		fmt.Printf("  ψ%d: direct %v, via ep-oracle %v (%s)\n", i+1, direct, viaOracle, status)
	}

	// Counting equivalence during cancellation (Example 4.2's engine).
	phi1 := epcq.MustParseQuery("p(w,x,y,z) := E(x,y) & E(y,z)")
	phi2 := epcq.MustParseQuery("p(w,x,y,z) := E(z,w) & E(w,x)")
	eq, err := epcq.CountingEquivalent(phi1, phi2, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nφ1 ~counting~ φ2 (the merge that gives coefficient 3): %v\n", eq)
}
