// Quickstart: parse a query and a structure, count answers, and peek at
// the paper's machinery (counting equivalence and classification).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	epcq "repro"
)

func main() {
	// An existential positive query: pairs (x,y) connected by an edge in
	// either direction, or both endpoints of a loop-adjacent vertex.
	q, err := epcq.ParseQuery("reach(x,y) := E(x,y) | E(y,x) | exists u. E(x,u) & E(u,u) & E(u,y)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query:", q)

	// A small directed graph as a fact file.
	b, err := epcq.ParseStructure(`
		universe a, b, c, d.
		E(a,b). E(b,c). E(c,c). E(c,d).
	`, nil)
	if err != nil {
		log.Fatal(err)
	}

	// One-shot counting (compiles the Theorem 3.1 pipeline internally and
	// counts each φ⁺ member with the FPT algorithm of Theorem 2.11).
	n, err := epcq.Count(q, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("answers over lib(φ) = {x,y}: %v\n\n", n)

	// For repeated counting, compile once.
	sig, err := epcq.InferSignature(q)
	if err != nil {
		log.Fatal(err)
	}
	counter, err := epcq.NewCounter(q, sig, epcq.EngineFPT)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(counter.Explain())

	// Counting equivalence (Theorem 5.4): do two pp-queries agree on
	// every structure?
	q1 := epcq.MustParseQuery("p(x,y) := E(x,y)")
	q2 := epcq.MustParseQuery("p(w,z) := E(w,z)")
	eq, err := epcq.CountingEquivalent(q1, q2, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nE(x,y) ~counting~ E(w,z): %v (Example 5.2)\n", eq)

	// Trichotomy classification (Theorem 3.2).
	v, err := epcq.Classify(q, nil, 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("classification:", v)
}
