// Trichotomy classification of query families (Theorem 3.2): measure how
// the two governing widths — core treewidth and contract-graph treewidth —
// grow along parameterized families, and report the case each family
// falls into.
//
// Run with: go run ./examples/classification
package main

import (
	"fmt"
	"log"

	epcq "repro"
)

// Families are built as query strings so the example sticks to the public
// API.
func pathQuery(k int) epcq.Query {
	src := "p(s,t) := "
	if k == 1 {
		return epcq.MustParseQuery(src + "E(s,t)")
	}
	src += "exists "
	for i := 1; i < k; i++ {
		if i > 1 {
			src += ", "
		}
		src += fmt.Sprintf("u%d", i)
	}
	src += ". E(s,u1)"
	for i := 1; i < k-1; i++ {
		src += fmt.Sprintf(" & E(u%d,u%d)", i, i+1)
	}
	src += fmt.Sprintf(" & E(u%d,t)", k-1)
	return epcq.MustParseQuery(src)
}

func cliqueQuery(k int, quantified bool) epcq.Query {
	vars := make([]string, k)
	for i := range vars {
		vars[i] = fmt.Sprintf("x%d", i+1)
	}
	body := ""
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if body != "" {
				body += " & "
			}
			body += fmt.Sprintf("E(%s,%s)", vars[i], vars[j])
		}
	}
	if quantified {
		src := "q() := exists "
		for i, v := range vars {
			if i > 0 {
				src += ", "
			}
			src += v
		}
		return epcq.MustParseQuery(src + ". " + body)
	}
	src := "q("
	for i, v := range vars {
		if i > 0 {
			src += ","
		}
		src += v
	}
	return epcq.MustParseQuery(src + ") := " + body)
}

func starQuery(k int) epcq.Query {
	src := "s("
	for i := 1; i <= k; i++ {
		if i > 1 {
			src += ","
		}
		src += fmt.Sprintf("x%d", i)
	}
	src += ") := exists c. E(c,x1)"
	for i := 2; i <= k; i++ {
		src += fmt.Sprintf(" & E(c,x%d)", i)
	}
	return epcq.MustParseQuery(src)
}

func main() {
	sig, err := epcq.NewSignature(epcq.RelSym{Name: "E", Arity: 2})
	if err != nil {
		log.Fatal(err)
	}
	families := []struct {
		name string
		gen  func(int) epcq.Query
	}{
		{"path with free endpoints", pathQuery},
		{"Boolean clique sentence", func(k int) epcq.Query { return cliqueQuery(k, true) }},
		{"free clique", func(k int) epcq.Query { return cliqueQuery(k, false) }},
		{"star with quantified center", starQuery},
	}
	ks := []int{2, 3, 4, 5, 6}
	for _, fam := range families {
		fv, err := epcq.AnalyzeQueryFamily(fam.gen, sig, ks)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", fam.name)
		fmt.Printf("  %-4s %-9s %-12s\n", "k", "core tw", "contract tw")
		for _, pt := range fv.Points {
			fmt.Printf("  %-4d %-9d %-12d\n", pt.K, pt.CoreTW, pt.ContractTW)
		}
		fmt.Printf("  trends: core %v, contract %v → %v\n\n", fv.CoreTrend, fv.ContractTrend, fv.ImpliedCase)
	}
	fmt.Println("Reading the table (Theorem 3.2):")
	fmt.Println("  both widths bounded        → case 1: counting is FPT")
	fmt.Println("  only contract width bounded → case 2: ≡ p-Clique")
	fmt.Println("  contract width unbounded    → case 3: p-#Clique-hard")
}
