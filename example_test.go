package epcq_test

import (
	"fmt"

	epcq "repro"
)

// The quickstart of the README: count triangle answers on a symmetric
// 3-cycle.
func ExampleCount() {
	q := epcq.MustParseQuery("triangles(x,y,z) := E(x,y) & E(y,z) & E(z,x)")
	b := epcq.MustParseStructure("E(a,b). E(b,c). E(c,a). E(b,a). E(c,b). E(a,c).", nil)
	n, err := epcq.Count(q, b)
	if err != nil {
		panic(err)
	}
	fmt.Println(n)
	// Output: 6
}

// Counting is over the liberal variables: z ranges over the whole
// universe even though it occurs in no atom (Example 2.1 of the paper).
func ExampleCount_liberalVariables() {
	q := epcq.MustParseQuery("psi(x,y,z) := E(x,y)")
	b := epcq.MustParseStructure("E(1,2). E(2,3).", nil)
	n, _ := epcq.Count(q, b)
	fmt.Println(n) // 2 edges × 3 choices for z
	// Output: 6
}

// Example 5.2 of the paper: same count on every structure, different
// variables.
func ExampleCountingEquivalent() {
	q1 := epcq.MustParseQuery("a(x,y) := E(x,y)")
	q2 := epcq.MustParseQuery("b(w,z) := E(w,z)")
	eq, _ := epcq.CountingEquivalent(q1, q2, nil)
	fmt.Println(eq)
	// Output: true
}

// The trichotomy verdict of the free 4-clique query (case 3).
func ExampleClassify() {
	q := epcq.MustParseQuery("c(x,y,z,w) := E(x,y)&E(x,z)&E(x,w)&E(y,z)&E(y,w)&E(z,w)")
	v, _ := epcq.Classify(q, nil, 1, 1)
	fmt.Println(v.Case)
	// Output: case 3: p-#Clique-hard
}

// Example 5.21 of the paper: φ⁺ of the running example has exactly two
// members, the 2-path class representative and the sentence disjunct.
func ExampleCompile() {
	q := epcq.MustParseQuery(`th(w,x,y,z) := E(x,y) & E(y,z)
		| E(z,w) & E(w,x)
		| E(w,x) & E(x,y)
		| exists a, b, c, d. E(a,b) & E(b,c) & E(c,d)`)
	c, _ := epcq.Compile(q, nil)
	fmt.Println(len(c.Plus))
	// Output: 2
}

// One compiled query counted over a batch of structures on a bounded
// worker pool; result i corresponds to structure i.
func ExampleCounter_CountBatch() {
	q := epcq.MustParseQuery("edges(x,y) := E(x,y)")
	sig, _ := epcq.InferSignature(q)
	c, _ := epcq.NewCounter(q, sig, epcq.EngineFPT)
	batch := []*epcq.Structure{
		epcq.MustParseStructure("E(a,b).", sig),
		epcq.MustParseStructure("E(a,b). E(b,c).", sig),
		epcq.MustParseStructure("E(a,b). E(b,c). E(c,a).", sig),
	}
	ns, _ := c.CountBatch(batch)
	fmt.Println(ns)
	// Output: [1 2 3]
}

// A compiled counter answers repeated counting questions; a sentence
// disjunct that holds short-circuits the count to |B|^|lib|.
func ExampleNewCounter() {
	q := epcq.MustParseQuery("q(x,y) := E(x,y) & E(y,x) | exists u. E(u,u)")
	sig, _ := epcq.InferSignature(q)
	c, _ := epcq.NewCounter(q, sig, epcq.EngineFPT)
	withLoop := epcq.MustParseStructure("E(1,1). E(1,2). E(2,3).", sig)
	n, _ := c.Count(withLoop)
	fmt.Println(n)
	// Output: 9
}
