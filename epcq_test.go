package epcq_test

import (
	"math/big"
	"testing"

	epcq "repro"
)

func TestQuickstartFlow(t *testing.T) {
	q, err := epcq.ParseQuery("triangles(x,y,z) := E(x,y) & E(y,z) & E(z,x)")
	if err != nil {
		t.Fatal(err)
	}
	b, err := epcq.ParseStructure("E(a,b). E(b,c). E(c,a). E(b,a). E(c,b). E(a,c).", nil)
	if err != nil {
		t.Fatal(err)
	}
	n, err := epcq.Count(q, b)
	if err != nil {
		t.Fatal(err)
	}
	// K3 symmetric: ordered triangles = 3! = 6.
	if n.Cmp(big.NewInt(6)) != 0 {
		t.Fatalf("triangles = %v, want 6", n)
	}
}

func TestCounterReuse(t *testing.T) {
	q := epcq.MustParseQuery("q(x,y) := E(x,y) | E(y,x)")
	sig, err := epcq.InferSignature(q)
	if err != nil {
		t.Fatal(err)
	}
	c, err := epcq.NewCounter(q, sig, epcq.EngineFPT)
	if err != nil {
		t.Fatal(err)
	}
	b1 := epcq.MustParseStructure("E(a,b).", sig)
	b2 := epcq.MustParseStructure("E(a,b). E(b,a).", sig)
	n1, err := c.Count(b1)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := c.Count(b2)
	if err != nil {
		t.Fatal(err)
	}
	if n1.Cmp(big.NewInt(2)) != 0 || n2.Cmp(big.NewInt(2)) != 0 {
		t.Fatalf("counts = %v, %v (want 2 and 2)", n1, n2)
	}
}

func TestEquivalenceAPI(t *testing.T) {
	// Example 5.2.
	q1 := epcq.MustParseQuery("a(x,y) := E(x,y)")
	q2 := epcq.MustParseQuery("b(w,z) := E(w,z)")
	eq, err := epcq.CountingEquivalent(q1, q2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("Example 5.2 must be counting equivalent")
	}
	// Example 5.7.
	q3 := epcq.MustParseQuery("c(x,y) := exists z. E(x,y) & F(z)")
	sce, err := epcq.SemiCountingEquivalent(q1, q3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sce {
		t.Fatal("Example 5.7 must be semi-counting equivalent")
	}
	ce, err := epcq.CountingEquivalent(q1, q3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ce {
		t.Fatal("Example 5.7 must not be counting equivalent")
	}
}

func TestLogicalEquivalenceAPI(t *testing.T) {
	q1 := epcq.MustParseQuery("a(x,y) := E(x,y) & E(x,y)")
	q2 := epcq.MustParseQuery("b(x,y) := E(x,y)")
	eq, err := epcq.LogicallyEquivalent(q1, q2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("duplicate atoms must be logically equivalent")
	}
}

func TestClassifyAPI(t *testing.T) {
	path := epcq.MustParseQuery("p(s,t) := exists u,v. E(s,u) & E(u,v) & E(v,t)")
	v, err := epcq.Classify(path, nil, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v.Case != epcq.CaseFPT {
		t.Fatalf("path classification = %v", v.Case)
	}
	clique := epcq.MustParseQuery("c(x,y,z,w) := E(x,y)&E(x,z)&E(x,w)&E(y,z)&E(y,w)&E(z,w)")
	v, err = epcq.Classify(clique, nil, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v.Case != epcq.CaseSharpClique {
		t.Fatalf("clique classification = %v", v.Case)
	}
}

func TestCompileAPI(t *testing.T) {
	q := epcq.MustParseQuery(`th(w,x,y,z) := E(x,y) & E(y,z)
		| E(z,w) & E(w,x)
		| E(w,x) & E(x,y)
		| exists a,b,c,d. E(a,b) & E(b,c) & E(c,d)`)
	c, err := epcq.Compile(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Plus) != 2 {
		t.Fatalf("Example 5.21: |φ⁺| = %d, want 2", len(c.Plus))
	}
}

func TestToPPRejectsUnions(t *testing.T) {
	q := epcq.MustParseQuery("q(x,y) := E(x,y) | E(y,x)")
	if _, err := epcq.ToPP(q, nil); err == nil {
		t.Fatal("ToPP must reject non-pp queries")
	}
}

func TestAnswersAPI(t *testing.T) {
	q := epcq.MustParseQuery("q(x,y) := E(x,y) | E(y,x)")
	b := epcq.MustParseStructure("E(a,b). E(b,c).", nil)
	answers, err := epcq.Answers(q, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 4 {
		t.Fatalf("answers = %d, want 4 (ab, ba, bc, cb)", len(answers))
	}
	n, err := epcq.Count(q, b)
	if err != nil {
		t.Fatal(err)
	}
	if n.Int64() != int64(len(answers)) {
		t.Fatalf("Count %v != len(Answers) %d", n, len(answers))
	}
	limited, err := epcq.Answers(q, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(limited) != 2 {
		t.Fatalf("limited answers = %d, want 2", len(limited))
	}
}

func TestCountHomomorphismsAPI(t *testing.T) {
	a := epcq.MustParseStructure("E(x,y).", nil)
	b := epcq.MustParseStructure("E(1,2). E(2,3). E(3,3).", nil)
	n, err := epcq.CountHomomorphisms(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if n.Cmp(big.NewInt(3)) != 0 {
		t.Fatalf("homs = %v, want 3 (one per edge)", n)
	}
}

func TestBuildStructureProgrammatically(t *testing.T) {
	sig, err := epcq.NewSignature(epcq.RelSym{Name: "R", Arity: 3})
	if err != nil {
		t.Fatal(err)
	}
	b := epcq.NewStructure(sig)
	if err := b.AddFact("R", "a", "b", "c"); err != nil {
		t.Fatal(err)
	}
	q := epcq.MustParseQuery("q(x) := exists y, z. R(x,y,z)")
	n, err := epcq.Count(q, b)
	if err != nil {
		t.Fatal(err)
	}
	if n.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("count = %v, want 1", n)
	}
}

func TestCountBatchAPI(t *testing.T) {
	q, err := epcq.ParseQuery("common(a,c) := exists m. E(a,m) & E(m,c)")
	if err != nil {
		t.Fatal(err)
	}
	var batch []*epcq.Structure
	srcs := []string{
		"E(a,b). E(b,c).",
		"E(a,a).",
		"E(a,b). E(b,c). E(c,d). E(d,a).",
	}
	sig, err := epcq.InferSignature(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range srcs {
		b, err := epcq.ParseStructure(src, sig)
		if err != nil {
			t.Fatal(err)
		}
		batch = append(batch, b)
	}
	got, err := epcq.CountBatch(q, batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(batch) {
		t.Fatalf("batch returned %d results, want %d", len(got), len(batch))
	}
	for i, b := range batch {
		want, err := epcq.Count(q, b)
		if err != nil {
			t.Fatal(err)
		}
		if got[i].Cmp(want) != 0 {
			t.Fatalf("batch[%d] = %v, want %v", i, got[i], want)
		}
	}
	if res, err := epcq.CountBatch(q, nil); err != nil || res != nil {
		t.Fatalf("empty batch = %v, %v; want nil, nil", res, err)
	}
}
